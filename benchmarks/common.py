"""Workload builders shared by the benchmark harness and the test suites.

The engine throughput benchmarks (E11, E13), the distributed listing
benchmark (E12) and the engine equivalence / distributed listing test suites
all need the same ingredients: delivery-bound broadcast / BFS / flooding
workloads and a stable family of seeded workload graphs.  They live here
once; ``tests/conftest.py`` puts this directory on ``sys.path`` so the test
suite imports the same definitions instead of duplicating them.

The array-friendly workloads come in *pairs*: a per-vertex
:class:`~repro.congest.vertex.VertexAlgorithm` (broadcast below, flooding
and BFS from :mod:`repro.baselines.naive`) and a whole-network
:class:`~repro.engine.vector.VectorAlgorithm` twin that steps every vertex
in one numpy call.  The vector class carries its scalar twin in
``per_vertex``, so the *same* class runs on every backend — the vectorized
backend takes the array fast path, the reference and sharded backends run
the twin per vertex — and the equivalence suite proves both paths agree on
outputs, rounds, and word totals under every delivery scenario.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.baselines.naive import BFSTreeLayers, FloodMinimum, bfs_tree_workload
from repro.congest.vertex import VertexAlgorithm
from repro.engine.vector import VectorAlgorithm, VectorInbox, VectorSends
from repro.experiments import register_graph_source, register_workload
from repro.graphs import erdos_renyi, planted_cliques, ring_of_cliques


class BroadcastBlob(VertexAlgorithm):
    """Every vertex broadcasts a ``payload_words``-word blob to all neighbours.

    The blob is a flat tuple of ints, so it costs ``1 + len`` CONGEST words
    and is fragmented by every backend into that many single-word rounds.
    A vertex halts once each neighbour's blob has fully arrived.  This is
    the delivery-bound regime the vectorized backend was built for.
    """

    payload_words = 256  # overridden per run via broadcast_workload()

    def __init__(self, vertex, neighbors, n):
        super().__init__(vertex, neighbors, n)
        self._received: set = set()

    def on_round(self, round_index, inbox):
        for message in inbox:
            self._received.add(message.sender)
        if round_index == 0:
            blob = tuple(range(self.payload_words - 1))
            return self.send_to_all_neighbors("blob", blob)
        if len(self._received) == len(self.neighbors):
            self.output = len(self._received)
            self.halt()
        return []


def broadcast_workload(payload_words: int) -> type[BroadcastBlob]:
    """A :class:`BroadcastBlob` subclass with the given blob size."""
    return type(
        "BroadcastBlobSized", (BroadcastBlob,), {"payload_words": payload_words}
    )


# -- whole-network (VectorAlgorithm) twins ----------------------------------


class VectorBroadcastBlob(VectorAlgorithm):
    """Array twin of :class:`BroadcastBlob`: all vertices stepped at once.

    Round 0 emits one ``payload_words``-word transfer per directed edge
    (precomputed CSR arrays, no per-vertex work); afterwards each round is a
    ``bincount`` of arrivals and two boolean masks.
    """

    payload_words = 256
    per_vertex = BroadcastBlob

    def __init__(self, topology):
        super().__init__(topology)
        self._received = np.zeros(topology.n, dtype=np.int64)
        self._outputs = np.zeros(topology.n, dtype=np.int64)

    def on_round(self, round_index: int, inbox: VectorInbox) -> VectorSends | None:
        topology = self.topology
        if inbox.size:
            # One blob per incident edge, so message counts equal distinct
            # senders — the scalar twin's set-cardinality check.
            self._received += inbox.count_per_receiver(topology.n)
        if round_index == 0:
            return topology.sends_to_all_neighbors(
                None,
                values=np.zeros(topology.n, dtype=np.int64),
                words=self.payload_words,
            )
        done = ~self.halted & (self._received == topology.degrees)
        if done.any():
            self._outputs[done] = self._received[done]
            self.halted |= done
        return None

    def outputs(self):
        return {
            v: int(self._outputs[i]) if self.halted[i] else None
            for i, v in enumerate(self.topology.nodes)
        }


class VectorFloodMinimum(VectorAlgorithm):
    """Array twin of :class:`repro.baselines.naive.FloodMinimum`."""

    per_vertex = FloodMinimum

    def __init__(self, topology):
        super().__init__(topology)
        self._best = topology.require_node_values().copy()
        self._changed = np.ones(topology.n, dtype=bool)
        self._quiet = np.zeros(topology.n, dtype=np.int64)

    def on_round(self, round_index: int, inbox: VectorInbox) -> VectorSends | None:
        n = self.topology.n
        if inbox.size:
            candidate = self._best.copy()
            np.minimum.at(candidate, inbox.receivers, inbox.values)
            self._changed |= candidate < self._best
            self._best = candidate
        live = ~self.halted
        senders = self._changed & live
        self._changed[senders] = False
        self._quiet[senders] = 0
        idle = live & ~senders
        self._quiet[idle] += 1
        finished = idle & (self._quiet > n)
        if finished.any():
            self.halted |= finished
        if senders.any():
            return self.topology.sends_to_all_neighbors(
                np.flatnonzero(senders), values=self._best, words=1
            )
        return None

    def outputs(self):
        return {
            v: int(self._best[i]) if self.halted[i] else None
            for i, v in enumerate(self.topology.nodes)
        }


class VectorBFSTree(VectorAlgorithm):
    """Array twin of :class:`repro.baselines.naive.BFSTreeLayers`.

    Per round: lexsort the inbox by ``(distance, sender id)`` and let each
    unreached receiver adopt its first-ranked announcement — exactly the
    scalar twin's ``min((payload, sender))`` choice, for every vertex in one
    pass.
    """

    root = 0
    per_vertex = BFSTreeLayers

    def __init__(self, topology):
        super().__init__(topology)
        self._node_values = topology.require_node_values()
        self._dist = np.full(topology.n, -1, dtype=np.int64)
        self._parent = np.full(topology.n, -1, dtype=np.int64)
        self._root_id = topology.id_of(self.root)

    def on_round(self, round_index: int, inbox: VectorInbox) -> VectorSends | None:
        n = self.topology.n
        newly = np.zeros(n, dtype=bool)
        if round_index == 0:
            self._dist[self._root_id] = 0
            self._parent[self._root_id] = self._node_values[self._root_id]
            newly[self._root_id] = True
        if inbox.size:
            sender_values = self._node_values[inbox.senders]
            order = np.lexsort((sender_values, inbox.values))
            receivers = inbox.receivers[order]
            unique_receivers, first = np.unique(receivers, return_index=True)
            adopt = self._dist[unique_receivers] < 0
            adopters = unique_receivers[adopt]
            best = order[first[adopt]]
            self._dist[adopters] = inbox.values[best] + 1
            self._parent[adopters] = sender_values[best]
            newly[adopters] = True
        sends = None
        if newly.any():
            self.halted |= newly
            sends = self.topology.sends_to_all_neighbors(
                np.flatnonzero(newly), values=self._dist, words=1
            )
        if round_index > n:
            self.halted |= self._dist < 0
        return sends

    def outputs(self):
        return {
            v: (int(self._dist[i]), int(self._parent[i]))
            if self._dist[i] >= 0
            else None
            for i, v in enumerate(self.topology.nodes)
        }


def vector_broadcast_workload(payload_words: int) -> type[VectorBroadcastBlob]:
    """A :class:`VectorBroadcastBlob` paired with a same-size scalar twin."""
    return type(
        "VectorBroadcastBlobSized",
        (VectorBroadcastBlob,),
        {
            "payload_words": payload_words,
            "per_vertex": broadcast_workload(payload_words),
        },
    )


def vector_bfs_workload(root=0) -> type[VectorBFSTree]:
    """A :class:`VectorBFSTree` rooted at ``root``, twin included."""
    return type(
        "VectorBFSTreeRooted",
        (VectorBFSTree,),
        {"root": root, "per_vertex": bfs_tree_workload(root)},
    )


def engine_workload_graphs() -> list[tuple[str, nx.Graph]]:
    """The seeded workload-graph matrix of the engine equivalence suite."""
    return [
        ("path", nx.path_graph(10)),
        ("dense-er", erdos_renyi(36, 12.0, seed=7)),
        ("sparse-er", erdos_renyi(50, 4.0, seed=3)),
        ("clique-ring", ring_of_cliques(5, 5)),
        ("planted", planted_cliques(40, 4, 4, background_avg_degree=3.0, seed=5)),
    ]


@register_graph_source("listing-workload")
def listing_workload_graph(n: int, seed: int = 23) -> nx.Graph:
    """The standard distributed-listing workload: sparse + planted K5s.

    Used by the E12 benchmark (``n = 1000`` acceptance run, ``n = 200``
    CI smoke), the E14 scenario grid, and the scale tests, so every
    consumer measures the same graph family.  Registered as the
    ``listing-workload`` graph source, so experiment specs (and their JSON
    form) can name it directly.
    """
    return planted_cliques(
        n, clique_size=5, num_cliques=max(4, n // 25),
        background_avg_degree=4.0, seed=seed,
    )


# -- experiment-registry entries --------------------------------------------
#
# The benchmark workloads register themselves with the open workload
# registry, so E11/E13/E14 (and any notebook) can select them by name in an
# ExperimentSpec; nothing benchmark-specific leaks into the library.


@register_workload("broadcast")
def broadcast_experiment_workload(payload_words: int = 256):
    """The E11 delivery-bound workload as a registered experiment workload."""
    return broadcast_workload(payload_words)


@register_workload("vector-broadcast")
def vector_broadcast_experiment_workload(payload_words: int = 256):
    """The whole-network numpy twin of ``broadcast`` (E13's fast path)."""
    return vector_broadcast_workload(payload_words)
