"""E14 — Robust-scenario grid: listing round degradation, backend x scenario.

The robust congested-clique model (arXiv:2508.08740) asks how algorithms
behave when delivery is not the clean synchronous ideal: smooth per-round
link drops, *correlated bursty* outages, and *heterogeneous per-edge
bandwidth*.  This experiment runs the engine-executed Theorem 32 triangle
listing (the ``distributed-listing`` driver workload) over the full

    {reference, vectorized, sharded} x
    {clean, link-drop, bursty, heterogeneous-bandwidth}

grid **through the declarative experiment API alone** — one
:class:`~repro.experiments.ExperimentSpec`, one
:meth:`~repro.experiments.Session.grid` call, no direct ``run_algorithm``
wiring — and reports how the measured parallel round count degrades per
scenario, with the :class:`~repro.experiments.ResultSet` asserting that
every cell's backends agree exactly (same cliques, same measured rounds).

Run standalone (writes BENCH_e14.json at the repo root by default)::

    PYTHONPATH=src python benchmarks/bench_e14_scenario_grid.py
    PYTHONPATH=src python benchmarks/bench_e14_scenario_grid.py --smoke

``--smoke`` runs the 200-vertex configuration only (the CI tier-2 job), or
through the pytest-benchmark harness like the other experiments::

    PYTHONPATH=src python -m pytest benchmarks/bench_e14_scenario_grid.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import common  # noqa: F401  (registers the 'listing-workload' graph source)
from repro.experiments import ExperimentSpec, Session

ALL_BACKENDS = ["reference", "vectorized", "sharded"]

# The robust-scenario axis: registry names with per-scenario parameters.
# The spec's sweep seed is injected into each scenario that accepts one.
SCENARIO_GRID = [
    "clean",
    ("link-drop", {"drop_probability": 0.1}),
    ("bursty", {"burst_probability": 0.25, "burst_length": 3, "period": 12}),
    ("heterogeneous-bandwidth", {"capacities": [1.0, 0.5, 0.25]}),
]


def build_spec(n: int, seed: int = 7, max_rounds: int = 200_000) -> ExperimentSpec:
    """The one declarative spec the whole grid runs from."""
    return ExperimentSpec(
        name="e14-scenario-grid",
        graph="listing-workload",
        graph_params={"n": n},
        workload="distributed-listing",
        backend="vectorized",
        seeds=(seed,),
        max_rounds=max_rounds,
    )


def run_experiment(
    n: int, seed: int = 7, backends: list[str] | None = None
) -> dict:
    """Execute the backend x scenario grid; return the JSON report."""
    backends = backends or ALL_BACKENDS
    spec = build_spec(n, seed=seed)
    session = Session(name="e14-scenario-grid")
    results = session.grid(spec, backends=backends, scenarios=SCENARIO_GRID)
    # The engine's equivalence contract, checked at the result layer: every
    # (scenario, seed) cell must list the identical cliques in the identical
    # number of measured rounds on every backend.
    results.check_backend_agreement()

    rounds_by_scenario: dict[str, int] = {}
    for result in results:
        rounds_by_scenario.setdefault(result.scenario_name, result.rounds)
    clean_rounds = rounds_by_scenario["clean"]
    degradation = {
        name: {
            "rounds": rounds,
            "stretch_vs_clean": round(rounds / max(clean_rounds, 1), 3),
        }
        for name, rounds in rounds_by_scenario.items()
    }

    report = results.to_json()
    report["experiment"] = (
        "E14 scenario grid (distributed listing under robust delivery models)"
    )
    report["workload"] = (
        "Theorem 32 triangle listing executed per-vertex on the engine; "
        "backend x scenario grid run through the declarative Session API; "
        "per-cell backend agreement asserted"
    )
    report["n"] = n
    report["seed"] = seed
    report["degradation"] = degradation
    report["spec"] = spec.to_json()
    return report


def render(report: dict) -> str:
    lines = [
        f"E14: listing round degradation on the robust-scenario grid "
        f"(n={report['n']})",
        f"{'scenario':<26s} {'backend':<11s} {'rounds':>7s} {'words':>9s} "
        f"{'secs':>8s}",
    ]
    for row in report["rows"]:
        lines.append(
            f"{row['scenario_name']:<26s} {row['backend']:<11s} "
            f"{row['rounds']:>7d} {row['words']:>9d} "
            f"{min(row['seconds']):>8.3f}"
        )
    lines.append("")
    lines.append("round stretch vs clean delivery:")
    for name, stats in report["degradation"].items():
        lines.append(
            f"  {name:<26s} {stats['rounds']:>7d} rounds "
            f"({stats['stretch_vs_clean']:.2f}x)"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--backends", nargs="+", default=ALL_BACKENDS)
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report ('-' to skip; default: the "
            "committed BENCH_e14.json, skipped under --smoke)"
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="200-vertex configuration only (the CI tier-2 job)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.n = 200
    report = run_experiment(args.n, seed=args.seed, backends=args.backends)
    print(render(report))
    json_path = args.json
    if json_path is None and not args.smoke:
        json_path = Path(__file__).resolve().parent.parent / "BENCH_e14.json"
    if json_path is not None and str(json_path) != "-":
        json_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {json_path}")
    return 0


def test_e14_scenario_grid(benchmark, print_section):
    """pytest-benchmark harness entry, small size to keep the suite fast."""
    from conftest import run_once

    report = run_once(benchmark, lambda: run_experiment(120))
    print_section(render(report))
    scenarios = {row["scenario_name"] for row in report["rows"]}
    assert scenarios == {
        "clean", "link-drop", "bursty", "heterogeneous-bandwidth"
    }
    assert all(
        stats["stretch_vs_clean"] >= 1.0 or name == "clean"
        for name, stats in report["degradation"].items()
    )


if __name__ == "__main__":
    sys.exit(main())
