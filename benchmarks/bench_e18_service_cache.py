"""E18 — Experiment service: content-addressed cache + fair-share serving.

PR 7's tentpole measured end to end.  The experiment server executes grid
cells on a multiprocessing worker pool and answers repeated cells from a
content-addressed cache keyed by the spec's deterministic
:meth:`~repro.experiments.ExperimentSpec.cell_digest`.  Three phases:

1. **Cold** — submit the E14 listing grid (``distributed-listing`` on the
   ``vectorized`` backend over clean / link-drop / bursty /
   heterogeneous-bandwidth) to a fresh server over HTTP; every cell
   executes on the pool.
2. **Warm** — resubmit the identical grid: every cell must be answered
   from the cache, with per-cell latency >= 100x below cold (at the full
   n=1000 configuration) and a final :meth:`ResultSet.digest` byte-identical
   to both the cold submission and a direct in-process
   :meth:`Session.grid` of the same spec.
3. **Fairness** — four concurrent clients submit disjoint grids (distinct
   seeds, so no cache short-circuit); the pool's dispatch log records the
   round-robin interleaving across clients, reported as the fraction of
   adjacent dispatches that switch client.

Run standalone (writes BENCH_e18.json at the repo root by default)::

    PYTHONPATH=src python benchmarks/bench_e18_service_cache.py
    PYTHONPATH=src python benchmarks/bench_e18_service_cache.py --smoke

``--smoke`` runs the 200-vertex configuration (the CI tier-2 job), or
through the pytest-benchmark harness like the other experiments::

    PYTHONPATH=src python -m pytest benchmarks/bench_e18_service_cache.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

import common  # noqa: F401  (registers the 'listing-workload' graph source)
from repro.experiments import ExperimentSpec, Session
from repro.service import (
    CellCache,
    ExperimentServer,
    ExperimentService,
    ServiceClient,
    SubmitRequest,
    WorkerPool,
)

# The E14 robust-scenario axis, served instead of run in-process.
SCENARIO_GRID = [
    "clean",
    ("link-drop", {"drop_probability": 0.1}),
    ("bursty", {"burst_probability": 0.25, "burst_length": 3, "period": 12}),
    ("heterogeneous-bandwidth", {"capacities": [1.0, 0.5, 0.25]}),
]

FAIR_CLIENTS = 4


def build_spec(n: int, seed: int = 7, max_rounds: int = 200_000) -> ExperimentSpec:
    return ExperimentSpec(
        name="e18-service-cache",
        graph="listing-workload",
        graph_params={"n": n},
        workload="distributed-listing",
        backend="vectorized",
        seeds=(seed,),
        max_rounds=max_rounds,
    )


def _switch_fraction(log: list[str]) -> float:
    """Fraction of adjacent dispatch pairs that change client (1.0 = strict
    alternation, 0.0 = one client fully drained before the next)."""
    if len(log) < 2:
        return 0.0
    switches = sum(
        1 for a, b in zip(log, log[1:]) if a != b
    )
    return round(switches / (len(log) - 1), 3)


def run_experiment(n: int, seed: int = 7, workers: int | None = None) -> dict:
    spec = build_spec(n, seed=seed)
    scenarios = SCENARIO_GRID

    # The ground truth the served grid must reproduce byte-for-byte.
    direct = Session(name="e18-direct").grid(spec, scenarios=scenarios)
    direct_digest = direct.digest()

    pool = WorkerPool(num_workers=workers).start()
    service = ExperimentService(pool, CellCache())
    server = ExperimentServer(service).start_in_background()
    try:
        client = ServiceClient(port=server.port, timeout=3600)
        request = SubmitRequest(
            spec=spec.to_json(),
            client="bench-e18",
            scenarios=scenarios,
        )

        start = time.perf_counter()
        cold = client.submit(request)
        cold_seconds = time.perf_counter() - start
        assert cold["failed"] == 0, cold["failures"]
        assert cold["executed"] == cold["cells"]

        start = time.perf_counter()
        warm = client.submit(request)
        warm_seconds = time.perf_counter() - start
        assert warm["cached"] == warm["cells"], warm
        assert warm["digest"] == cold["digest"] == direct_digest

        cells = cold["cells"]
        cold_per_cell = cold_seconds / cells
        warm_per_cell = warm_seconds / cells
        speedup = cold_per_cell / warm_per_cell if warm_per_cell > 0 else 0.0

        # Fairness: concurrent clients with disjoint work (distinct seeds,
        # so nothing is answered from cache and every cell hits the pool).
        log_before = len(pool.dispatch_log)
        fair_replies: dict[str, dict] = {}

        def submit_as(label: str, client_seed: int) -> None:
            fair_spec = build_spec(n, seed=client_seed)
            fair_request = SubmitRequest(
                spec=fair_spec.to_json(), client=label, scenarios=scenarios
            )
            fair_replies[label] = ServiceClient(
                port=server.port, timeout=3600
            ).submit(fair_request)

        threads = [
            threading.Thread(
                target=submit_as, args=(f"client-{i}", 100 + i)
            )
            for i in range(FAIR_CLIENTS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        fair_seconds = time.perf_counter() - start
        for label, reply in fair_replies.items():
            assert reply["failed"] == 0, (label, reply["failures"])
        dispatch_log = pool.dispatch_log[log_before:]
        pool_stats = pool.stats()
    finally:
        server.stop()
        pool.close()

    return {
        "experiment": (
            "E18 service cache (content-addressed replay + fair-share pool)"
        ),
        "workload": (
            "E14 listing grid submitted over HTTP to the experiment server; "
            "cold executes on the worker pool, warm replays from the "
            "digest-keyed cache; four concurrent clients measure fair share"
        ),
        "n": n,
        "seed": seed,
        "cells": cells,
        "workers": pool.num_workers,
        "cold": {
            "seconds": round(cold_seconds, 6),
            "per_cell_seconds": round(cold_per_cell, 6),
        },
        "warm": {
            "seconds": round(warm_seconds, 6),
            "per_cell_seconds": round(warm_per_cell, 6),
            "cached": warm["cached"],
        },
        "per_cell_speedup": round(speedup, 1),
        "digest": {
            "service_cold": cold["digest"],
            "service_warm": warm["digest"],
            "direct_session_grid": direct_digest,
            "match": cold["digest"] == warm["digest"] == direct_digest,
        },
        "fairness": {
            "clients": FAIR_CLIENTS,
            "cells_per_client": cells,
            "seconds": round(fair_seconds, 6),
            "dispatch_log": dispatch_log,
            "adjacent_switch_fraction": _switch_fraction(dispatch_log),
        },
        "pool": pool_stats,
        "rows": cold["resultset"]["rows"],
        "spec": spec.to_json(),
    }


def render(report: dict) -> str:
    lines = [
        f"E18: experiment service cache (n={report['n']}, "
        f"{report['cells']} cells, {report['workers']} workers)",
        f"  cold submit: {report['cold']['seconds']:.3f}s "
        f"({report['cold']['per_cell_seconds'] * 1e3:.1f} ms/cell, all "
        f"executed)",
        f"  warm submit: {report['warm']['seconds']:.3f}s "
        f"({report['warm']['per_cell_seconds'] * 1e3:.2f} ms/cell, "
        f"{report['warm']['cached']} from cache)",
        f"  per-cell speedup: {report['per_cell_speedup']:.0f}x",
        f"  digest (cold == warm == direct Session.grid): "
        f"{report['digest']['match']} [{report['digest']['service_cold']}]",
        f"  fairness: {report['fairness']['clients']} concurrent clients, "
        f"{report['fairness']['seconds']:.3f}s, adjacent-switch fraction "
        f"{report['fairness']['adjacent_switch_fraction']:.3f}",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report ('-' to skip; default: the "
            "committed BENCH_e18.json, skipped under --smoke)"
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="200-vertex configuration only (the CI tier-2 job)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.n = 200
    report = run_experiment(args.n, seed=args.seed, workers=args.workers)
    print(render(report))
    if not report["digest"]["match"]:  # pragma: no cover - hard failure
        print("DIGEST MISMATCH", file=sys.stderr)
        return 1
    if not args.smoke and report["per_cell_speedup"] < 100:
        print(
            f"cache speedup {report['per_cell_speedup']:.0f}x is below the "
            f"100x acceptance threshold",
            file=sys.stderr,
        )
        return 1
    json_path = args.json
    if json_path is None and not args.smoke:
        json_path = Path(__file__).resolve().parent.parent / "BENCH_e18.json"
    if json_path is not None and str(json_path) != "-":
        json_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {json_path}")
    return 0


def test_e18_service_cache(benchmark, print_section):
    """pytest-benchmark harness entry, small size to keep the suite fast."""
    from conftest import run_once

    report = run_once(benchmark, lambda: run_experiment(120, workers=2))
    print_section(render(report))
    assert report["digest"]["match"]
    assert report["warm"]["cached"] == report["cells"]
    # At this tiny size cold cells are milliseconds, so only a conservative
    # floor is asserted; the 100x acceptance bar applies to the full n=1000
    # standalone run.
    assert report["per_cell_speedup"] >= 5
    assert report["fairness"]["adjacent_switch_fraction"] > 0


if __name__ == "__main__":
    sys.exit(main())
