"""E9 — [DLP12]: deterministic K_p listing in the Congested Clique in
O(n^{1-2/p}/log n) rounds.  The paper lifts this load-balancing strategy into
CONGEST; this experiment regenerates the Congested-Clique reference curve the
CONGEST algorithms are measured against."""

from repro.analysis import ExperimentTable, fit_power_law, predicted_exponent
from repro.baselines import congested_clique_listing
from repro.graphs import enumerate_cliques, erdos_renyi

from conftest import run_once

SIZES = [64, 128, 256]


def test_e9_congested_clique_listing(benchmark, print_section):
    def experiment():
        rows = []
        for p in (3, 4):
            for n in SIZES:
                graph = erdos_renyi(n, 0.3 * n, seed=9)
                result, report = congested_clique_listing(graph, p=p)
                assert result.cliques == enumerate_cliques(graph, p)
                rows.append((p, n, result, report))
        return rows

    rows = run_once(benchmark, experiment)

    table = ExperimentTable(
        title="E9: DLP12 deterministic listing in the Congested Clique",
        columns=["rounds", "max_words_per_vertex", "theoretical_rounds"],
    )
    for p in (3, 4):
        measured = []
        for row_p, n, result, report in rows:
            if row_p != p:
                continue
            measured.append(max(1, result.rounds))
            table.add_row(
                f"p={p}, n={n}",
                rounds=result.rounds,
                max_words_per_vertex=report.max_words_per_vertex,
                theoretical_rounds=round(report.theoretical_rounds, 1),
            )
        fit = fit_power_law(SIZES, measured)
        # Congested-Clique rounds grow like n^{1-2/p} (the instances are dense,
        # so the load is close to worst case).
        assert fit.exponent < predicted_exponent(p) + 0.75
    print_section(table.render())
