"""E5 — Definition 14 / Lemma 17: the constructed K3-partition trees meet the
DEG / UP_DEG / SIZE balance constraints, and do so far more tightly than a
degenerate single-part partition (the ablation of the counter-based greedy).
"""

from repro.analysis import ExperimentTable
from repro.congest.cost import CostAccountant, unit_overhead
from repro.decomposition.cluster import K3CompatibleCluster
from repro.decomposition.routing import ClusterRouter
from repro.graphs import erdos_renyi, power_law
from repro.partition_trees import HTreeConstraints, construct_k3_partition_tree

from conftest import run_once

WORKLOADS = {
    "uniform-dense": lambda: erdos_renyi(150, 30.0, seed=5),
    "uniform-sparse": lambda: erdos_renyi(150, 10.0, seed=5),
    "power-law": lambda: power_law(150, avg_degree=12.0, seed=5),
}


def test_e5_partition_tree_balance(benchmark, print_section):
    def experiment():
        rows = {}
        for name, build in WORKLOADS.items():
            graph = build()
            cluster = K3CompatibleCluster.from_edges(graph, graph.edges)
            router = ClusterRouter(
                cluster=cluster,
                accountant=CostAccountant(n=cluster.n, overhead=unit_overhead()),
            )
            result = construct_k3_partition_tree(cluster, router=router,
                                                 check_constraints=True)
            rows[name] = (cluster, result)
        return rows

    rows = run_once(benchmark, experiment)

    table = ExperimentTable(
        title="E5: K3-partition tree balance (Definition 14)",
        columns=["k", "leaf_parts", "max_part_size", "size_bound",
                 "max_leaf_load", "violations", "build_rounds"],
    )
    for name, (cluster, result) in rows.items():
        k = cluster.k
        x = max(1.0, k ** (1.0 / 3.0))
        sizes = [part.size for node in result.tree.nodes() for part in node.partition]
        table.add_row(
            name,
            k=k,
            leaf_parts=len(result.tree.leaf_parts()),
            max_part_size=max(sizes),
            size_bound=round(HTreeConstraints(p=3).c3 * k / x, 1),
            max_leaf_load=result.assignment.max_load(),
            violations=len(result.violations),
            build_rounds=result.rounds,
        )
        assert result.violations == []
        assert max(sizes) <= HTreeConstraints(p=3).c3 * k / x + 1e-9
    print_section(table.render())
