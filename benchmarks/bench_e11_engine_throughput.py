"""E11 — Execution-engine throughput: reference vs vectorized vs sharded.

The workload is the delivery-bound regime the engine was built for: every
vertex of a random graph broadcasts a multi-word blob to all neighbours in
round 0 and waits for every neighbour's blob to finish arriving.  The
one-word-per-edge bandwidth constraint stretches each transfer over
``payload_words`` rounds, so the reference simulator pays
``O(rounds x directed edges)`` deque operations while the vectorized
scheduler pays ``O(transfers)`` total.  The acceptance bar for the engine
subsystem is a >= 10x vectorized speedup on the 1,000-vertex configuration,
with all backends agreeing bit-for-bit on rounds / messages / words.

Run standalone (writes BENCH_e11.json at the repo root by default)::

    PYTHONPATH=src python benchmarks/bench_e11_engine_throughput.py
    PYTHONPATH=src python benchmarks/bench_e11_engine_throughput.py --smoke

or through the pytest-benchmark harness like the other experiments::

    PYTHONPATH=src python -m pytest benchmarks/bench_e11_engine_throughput.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import common  # noqa: F401  (registers the 'broadcast' workload)
from repro.experiments import ExperimentSpec, Session


def run_config(
    n: int,
    avg_degree: float,
    payload_words: int,
    backends: list[str],
    seed: int = 11,
    max_rounds: int = 100_000,
) -> dict:
    """Time every backend on one configuration; assert they agree.

    A thin wrapper over the declarative experiment API: one spec, one
    backend grid, with the cross-backend agreement check done by the
    :class:`~repro.experiments.ResultSet` itself.
    """
    spec = ExperimentSpec(
        name="e11-broadcast",
        graph="erdos-renyi",
        graph_params={"n": n, "avg_degree": avg_degree, "seed": seed},
        workload="broadcast",
        workload_params={"payload_words": payload_words},
        max_rounds=max_rounds,
    )
    results = Session().grid(spec, backends=backends)
    results.check_backend_agreement()
    row: dict = {
        "n": n,
        "edges": results.results[0].edges,
        "avg_degree": avg_degree,
        "payload_words": payload_words,
        "backends": {
            result.backend: {
                "seconds": round(min(result.seconds), 6),
                "rounds": result.rounds,
                "messages": result.messages,
                "words": result.words,
            }
            for result in results
        },
    }
    if "reference" in row["backends"] and "vectorized" in row["backends"]:
        ref = row["backends"]["reference"]["seconds"]
        vec = row["backends"]["vectorized"]["seconds"]
        row["vectorized_speedup"] = round(ref / max(vec, 1e-9), 2)
    return row


def run_experiment(
    sizes: list[int],
    avg_degree: float = 20.0,
    payload_words: int = 256,
    backends: list[str] | None = None,
) -> dict:
    backends = backends or ["reference", "vectorized", "sharded"]
    rows = [run_config(n, avg_degree, payload_words, backends) for n in sizes]
    return {
        "experiment": "E11 engine throughput (broadcast workload)",
        "workload": (
            "every vertex broadcasts a multi-word blob to all neighbours; "
            "halts when all neighbour blobs arrived"
        ),
        "rows": rows,
    }


def render(report: dict) -> str:
    lines = [
        "E11: engine throughput on the broadcast workload",
        f"{'n':>6s} {'edges':>7s} {'words/blob':>10s} {'backend':<11s} "
        f"{'rounds':>7s} {'secs':>9s} {'speedup':>8s}",
    ]
    for row in report["rows"]:
        for backend, stats in row["backends"].items():
            speedup = ""
            if backend == "vectorized" and "vectorized_speedup" in row:
                speedup = f"{row['vectorized_speedup']:.1f}x"
            lines.append(
                f"{row['n']:>6d} {row['edges']:>7d} {row['payload_words']:>10d} "
                f"{backend:<11s} {stats['rounds']:>7d} {stats['seconds']:>9.3f} "
                f"{speedup:>8s}"
            )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[200, 500, 1000])
    parser.add_argument("--avg-degree", type=float, default=20.0)
    parser.add_argument("--payload-words", type=int, default=256)
    parser.add_argument(
        "--backends",
        nargs="+",
        default=["reference", "vectorized", "sharded"],
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_e11.json",
        help="where to write the JSON report ('-' to skip)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI: proves the harness runs, not the speedup",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.sizes = [60]
        args.payload_words = 16
    report = run_experiment(
        args.sizes, args.avg_degree, args.payload_words, args.backends
    )
    print(render(report))
    if str(args.json) != "-" and not args.smoke:
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {args.json}")
    return 0


def test_e11_engine_throughput(benchmark, print_section):
    """pytest-benchmark harness entry, small sizes to keep the suite fast."""
    from conftest import run_once

    report = run_once(
        benchmark, lambda: run_experiment([120], payload_words=32)
    )
    print_section(render(report))
    row = report["rows"][0]
    backends = row["backends"]
    assert backends["reference"]["words"] == backends["vectorized"]["words"]


if __name__ == "__main__":
    sys.exit(main())
