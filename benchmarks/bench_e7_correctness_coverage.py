"""E7 — Listing correctness and duplication across workloads and clique sizes.

Every K_p instance must be reported at least once (Theorem 1 is a listing
guarantee); the duplication factor (reports per distinct clique) stays a
small constant because each clique is charged to the clusters containing its
edges, of which there are O(1) per recursion level.
"""

from repro import list_cliques, validate_listing
from repro.analysis import ExperimentTable
from repro.graphs import clustered_communities, erdos_renyi, planted_cliques, power_law

from conftest import run_once

WORKLOADS = {
    "erdos-renyi": lambda: erdos_renyi(90, 14.0, seed=7),
    "planted-cliques": lambda: planted_cliques(90, 5, 8, background_avg_degree=4.0, seed=7),
    "communities": lambda: clustered_communities(4, 20, intra_p=0.5, inter_p=0.03, seed=7),
    "power-law": lambda: power_law(90, avg_degree=8.0, seed=7),
}


def test_e7_correctness_and_duplication(benchmark, print_section):
    def experiment():
        rows = []
        for name, build in WORKLOADS.items():
            graph = build()
            for p in (3, 4, 5):
                result = list_cliques(graph, p)
                report = validate_listing(graph, result)
                rows.append((name, p, result, report))
        return rows

    rows = run_once(benchmark, experiment)

    table = ExperimentTable(
        title="E7: coverage and duplication of the deterministic listing",
        columns=["expected", "listed", "missing", "spurious", "duplication", "rounds"],
    )
    for name, p, result, report in rows:
        table.add_row(
            f"{name} K{p}",
            expected=report.expected,
            listed=report.listed,
            missing=len(report.missing),
            spurious=len(report.spurious),
            duplication=round(report.duplication_factor, 2),
            rounds=result.rounds,
        )
        assert report.correct, report.summary()
    print_section(table.render())
