"""E16 — Tracing overhead: the null tracer must be free, recording cheap.

The observability layer (:mod:`repro.obs`) threads a tracer through every
engine hot loop.  Its contract is that an *untraced* run pays one
``tracer.enabled`` attribute check per round and nothing else — so the
engine with the tracing layer compiled in must run the same cell at the
same speed with and without a :class:`~repro.obs.NullTracer` installed.
This experiment pins that contract on the distributed-listing workload
(the E14 cell): interleaved repeats of the untraced and null-traced
sessions, best-of comparison, overhead asserted below the budget — and
the result digests of every configuration must be bit-identical, with
per-cell reference agreement checked through the ordinary grid path.

Run standalone (writes BENCH_e16.json at the repo root by default)::

    PYTHONPATH=src python benchmarks/bench_e16_trace_overhead.py
    PYTHONPATH=src python benchmarks/bench_e16_trace_overhead.py --smoke
    PYTHONPATH=src python benchmarks/bench_e16_trace_overhead.py \
        --smoke --trace-dir traces/

``--trace-dir`` additionally runs one fully traced execution and writes
``trace.jsonl`` (the structured event stream) plus ``trace_chrome.json``
(load it in https://ui.perfetto.dev) — the CI tier-2 job uploads both as
workflow artifacts.  Or through the pytest-benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_e16_trace_overhead.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import common  # noqa: F401  (registers the 'listing-workload' graph source)
from repro.experiments import ExperimentSpec, Session
from repro.obs import (
    JsonlTracer,
    NullTracer,
    read_jsonl_events,
    write_chrome_trace,
)

#: Maximum tolerated slowdown of a null-traced run vs an untraced run, in
#: percent of the untraced best-of time.  The null tracer's only cost is
#: one attribute check per round, so 3% is generous headroom for noise.
OVERHEAD_LIMIT_PCT = 3.0


def build_spec(n: int, seed: int = 7, max_rounds: int = 200_000) -> ExperimentSpec:
    """The E14 listing cell, reused as the overhead workload."""
    return ExperimentSpec(
        name="e16-trace-overhead",
        graph="listing-workload",
        graph_params={"n": n},
        workload="distributed-listing",
        backend="vectorized",
        seeds=(seed,),
        max_rounds=max_rounds,
    )


def run_experiment(n: int, seed: int = 7, repeats: int = 5) -> dict:
    """Interleaved untraced / null-traced timings plus invariance checks."""
    spec = build_spec(n, seed=seed)

    # Interleaved repeats: alternating the two configurations spreads any
    # machine-load drift evenly over both, and best-of filters the rest.
    untraced: list[float] = []
    null_traced: list[float] = []
    digests: set[str] = set()
    for _ in range(repeats):
        for tracer, bucket in ((None, untraced), (NullTracer(), null_traced)):
            session = Session(name="e16-trace-overhead", tracer=tracer)
            start = time.perf_counter()
            results = session.sweep(spec)
            bucket.append(time.perf_counter() - start)
            digests.add(results.digest())
    if len(digests) != 1:
        raise AssertionError(
            f"null-traced and untraced digests differ: {sorted(digests)}"
        )

    # The equivalence contract stays intact under the tracing layer: the
    # same cell on the reference backend must agree exactly.
    agreement = Session(name="e16-agreement").grid(
        spec, backends=["reference", "vectorized"]
    )
    agreement.check_backend_agreement()

    best_untraced = min(untraced)
    best_null = min(null_traced)
    overhead_pct = (best_null - best_untraced) / best_untraced * 100.0
    return {
        "experiment": "E16 tracing overhead (null tracer vs untraced)",
        "workload": (
            "distributed-listing on the vectorized backend; interleaved "
            "best-of repeats; digests bit-identical; reference agreement "
            "checked per cell"
        ),
        "n": n,
        "seed": seed,
        "repeats": repeats,
        "seconds_untraced": [round(s, 6) for s in untraced],
        "seconds_null_tracer": [round(s, 6) for s in null_traced],
        "best_untraced": round(best_untraced, 6),
        "best_null_tracer": round(best_null, 6),
        "overhead_pct": round(overhead_pct, 3),
        "overhead_limit_pct": OVERHEAD_LIMIT_PCT,
        "digest": digests.pop(),
    }


def export_traces(n: int, seed: int, trace_dir: Path) -> list[Path]:
    """One fully traced run; writes the JSONL stream and a Chrome trace."""
    trace_dir.mkdir(parents=True, exist_ok=True)
    jsonl_path = trace_dir / "trace.jsonl"
    spec = build_spec(n, seed=seed)
    with JsonlTracer(jsonl_path) as tracer:
        Session(name="e16-traced", tracer=tracer).sweep(spec)
    chrome_path = write_chrome_trace(
        read_jsonl_events(jsonl_path), trace_dir / "trace_chrome.json"
    )
    return [jsonl_path, chrome_path]


def render(report: dict) -> str:
    lines = [
        f"E16: tracing overhead on the listing cell (n={report['n']}, "
        f"best of {report['repeats']})",
        f"  untraced     best {report['best_untraced']:.3f}s  "
        f"all {report['seconds_untraced']}",
        f"  null tracer  best {report['best_null_tracer']:.3f}s  "
        f"all {report['seconds_null_tracer']}",
        f"  overhead {report['overhead_pct']:+.2f}%  "
        f"(limit {report['overhead_limit_pct']:.1f}%)",
        f"  digest {report['digest']} (identical across configurations; "
        f"reference agreement ok)",
    ]
    return "\n".join(lines)


def check(report: dict) -> None:
    if report["overhead_pct"] > report["overhead_limit_pct"]:
        raise AssertionError(
            f"null tracer overhead {report['overhead_pct']:.2f}% exceeds "
            f"the {report['overhead_limit_pct']:.1f}% budget"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report ('-' to skip; default: the "
            "committed BENCH_e16.json, skipped under --smoke)"
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="200-vertex configuration only (the CI tier-2 job)",
    )
    parser.add_argument(
        "--trace-dir",
        type=Path,
        default=None,
        help="also run one fully traced execution and write trace.jsonl "
        "+ trace_chrome.json into this directory",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.n = 200
    report = run_experiment(args.n, seed=args.seed, repeats=args.repeats)
    print(render(report))
    check(report)
    if args.trace_dir is not None:
        for path in export_traces(args.n, args.seed, args.trace_dir):
            print(f"wrote {path}")
    json_path = args.json
    if json_path is None and not args.smoke:
        json_path = Path(__file__).resolve().parent.parent / "BENCH_e16.json"
    if json_path is not None and str(json_path) != "-":
        json_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {json_path}")
    return 0


def test_e16_trace_overhead(benchmark, print_section):
    """pytest-benchmark harness entry, small size to keep the suite fast."""
    from conftest import run_once

    report = run_once(benchmark, lambda: run_experiment(120, repeats=3))
    print_section(render(report))
    # Digest identity and reference agreement are asserted inside
    # run_experiment; the timing budget is only meaningful on the full-size
    # cell (a 120-vertex cell is noise-dominated), so it is not gated here.
    assert report["best_untraced"] > 0


if __name__ == "__main__":
    sys.exit(main())
