"""E19 — Robust compiler: compiled-vs-bare recovery under vertex faults.

The fault-tolerant compiler (``repro.robust``) claims that wrapping *any*
per-vertex algorithm with a replication or LDC/erasure-coding strategy makes
its output survive crash-stop and Byzantine vertex faults at a bounded
round-stretch cost.  This experiment pins that claim on the E14/E15 listing
workload graph (giant connected component, so layered BFS terminates
without the unreachable-vertex timeout) by running the

    {bare, compiled-replication, compiled-erasure-coding} x
    {clean, crash-vertices, byzantine-vertices}

grid through the declarative experiment API — the compiled column uses the
``robust-compiled`` driver workload, so the whole sweep is spec + Session,
no direct compiler wiring — and asserting, per the acceptance criteria:

* **bare runs break**: under each vertex-fault scenario the bare BFS-tree
  output digest diverges from the clean digest (or the run fails to halt);
* **compiled runs recover**: under the *same* fault scenarios, both
  strategies reproduce the clean-run output digest exactly — replication
  (``k = 2f + 1`` full copies, majority vote) and erasure coding
  (``k = d + f`` checksummed Cauchy shares, any ``d`` decode);
* **stretch is bounded**: every compiled cell reports
  ``round_stretch <= 4`` (replication replays clean fragmentation, ~1.0;
  coded shares pay checksum + framing words per hop, ~3.0 on the one-word
  BFS announcements).

Run standalone (writes BENCH_e19.json at the repo root by default)::

    PYTHONPATH=src python benchmarks/bench_e19_robust_compiler.py
    PYTHONPATH=src python benchmarks/bench_e19_robust_compiler.py --smoke

``--smoke`` runs the 200-vertex configuration only (the CI tier-2 job);
``--trace-dir DIR`` additionally runs one fully traced compiled cell under
crash faults and writes its JSONL event stream (including the
``vertex_crashed`` events) plus the Chrome/Perfetto timeline into ``DIR``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import networkx as nx

import common  # noqa: F401  (registers the 'listing-workload' graph source)
from common import listing_workload_graph
from repro.experiments import (
    ExperimentSpec,
    ResultSet,
    RunResult,
    Session,
    register_graph_source,
)
from repro.obs import JsonlTracer, read_jsonl_events, write_chrome_trace
from repro.robust import compile_robust

# The fault axis: a seeded crash burst in the opening rounds, and seeded
# Byzantine word-flippers active from round 0.  The same scenario entries
# apply to the bare runs (on the logical graph) and the compiled runs (on
# the replicated graph) — the fault model is the adversary's *budget*, not
# a fixed vertex set.
FAULT_BUDGET = 6
SCENARIO_GRID = [
    "clean",
    (
        "crash-vertices",
        {"max_faulty": FAULT_BUDGET, "first_round": 1, "window": 4},
    ),
    ("byzantine-vertices", {"max_faulty": FAULT_BUDGET}),
]

# Both strategies sized to survive the budget even if every fault lands in
# one replica group: replication k = 2f + 1 = 5, erasure coding k = d + f
# = 4 with any d = 2 of the checksummed shares decoding.
STRATEGIES = [
    ("replication", {"f": 2}),
    ("erasure-coding", {"d": 2, "f": 2}),
]

STRETCH_BOUND = 4.0


@register_graph_source("listing-workload-cc")
def listing_workload_giant_component(n: int, seed: int = 23) -> nx.Graph:
    """Giant connected component of the E14/E15 listing workload graph.

    The planted-cliques family leaves a few isolated background vertices;
    layered BFS would idle for the full ``n``-round timeout on those, so
    E19 measures on the giant component (relabelled to ``0..m-1`` in sorted
    order, keeping the BFS root at vertex 0 deterministic).
    """
    graph = listing_workload_graph(n, seed=seed)
    component = max(nx.connected_components(graph), key=len)
    return nx.convert_node_labels_to_integers(
        graph.subgraph(sorted(component)), ordering="sorted"
    )


def bare_spec(n: int, seed: int, max_rounds: int = 100_000) -> ExperimentSpec:
    return ExperimentSpec(
        name="e19-bare",
        graph="listing-workload-cc",
        graph_params={"n": n},
        workload="bfs-tree",
        backend="vectorized",
        seeds=(seed,),
        max_rounds=max_rounds,
    )


def compiled_spec(
    n: int, seed: int, strategy: str, params: dict, max_rounds: int = 100_000
) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"e19-compiled-{strategy}",
        graph="listing-workload-cc",
        graph_params={"n": n},
        workload="robust-compiled",
        workload_params={"inner": "bfs-tree", "strategy": strategy, **params},
        backend="vectorized",
        seeds=(seed,),
        max_rounds=max_rounds,
    )


def _seeded(entry, seed: int):
    """The scenario-grid entry with the experiment seed injected."""
    if isinstance(entry, str):
        return entry
    name, params = entry
    return (name, {**params, "seed": seed})


def _by_scenario(results) -> dict[str, RunResult]:
    return {result.scenario_name: result for result in results}


def run_experiment(n: int, seed: int = 7) -> dict:
    """Execute the protocol x scenario grid; assert recovery; report JSON."""
    session = Session(name="e19-robust-compiler")
    scenarios = [_seeded(entry, seed) for entry in SCENARIO_GRID]
    fault_names = [name for name, _ in SCENARIO_GRID[1:]]

    bare = _by_scenario(session.grid(bare_spec(n, seed), scenarios=scenarios))
    clean_digest = bare["clean"].output_digest

    # Acceptance 1: the bare protocol demonstrably breaks under each fault.
    bare_broken = {}
    for name in fault_names:
        cell = bare[name]
        diverged = cell.output_digest != clean_digest or not cell.halted
        assert diverged, (
            f"bare run under {name} matched the clean digest — the fault "
            f"injection is not exercising the compiler"
        )
        bare_broken[name] = {
            "digest_diverged": cell.output_digest != clean_digest,
            "halted": cell.halted,
        }

    # Acceptance 2 + 3: both compiled strategies recover the clean digest
    # under the same faults, within the stretch bound.
    compiled_rows = {}
    for strategy, params in STRATEGIES:
        results = _by_scenario(
            session.grid(
                compiled_spec(n, seed, strategy, params), scenarios=scenarios
            )
        )
        for name, cell in results.items():
            assert cell.output_digest == clean_digest, (
                f"compiled[{strategy}] under {name} lost the clean digest: "
                f"{cell.output_digest} != {clean_digest}"
            )
            assert cell.halted, f"compiled[{strategy}] under {name} did not halt"
            assert cell.round_stretch is not None
            assert cell.round_stretch <= STRETCH_BOUND, (
                f"compiled[{strategy}] under {name} stretched "
                f"{cell.round_stretch:.2f}x > {STRETCH_BOUND}x"
            )
        compiled_rows[strategy] = results

    stretch = {
        strategy: {
            name: round(results[name].round_stretch, 4)
            for name in ("clean", *fault_names)
        }
        for strategy, results in compiled_rows.items()
    }
    protocols = {"bare": bare, **compiled_rows}
    summary = {
        protocol: {
            name: {
                "rounds": cell.rounds,
                "words": cell.words,
                "round_stretch": (
                    None if cell.round_stretch is None
                    else round(cell.round_stretch, 4)
                ),
                "recovers_clean_digest": cell.output_digest == clean_digest,
            }
            for name, cell in results.items()
        }
        for protocol, results in protocols.items()
    }

    report = ResultSet(
        experiment="e19-robust-compiler",
        workload="bfs-tree (bare + robust-compiled)",
        results=list(session.history),
    ).to_json()
    report["experiment"] = (
        "E19 robust compiler (compiled-vs-bare recovery under vertex faults)"
    )
    report["workload"] = (
        "layered BFS tree on the listing-workload giant component; bare vs "
        "compile_robust(replication | erasure-coding) through the "
        "declarative Session API; clean-digest recovery + stretch asserted"
    )
    report["n"] = n
    report["logical_vertices"] = bare["clean"].n
    report["seed"] = seed
    report["fault_budget"] = FAULT_BUDGET
    report["clean_digest"] = clean_digest
    report["bare_broken"] = bare_broken
    report["summary"] = summary
    report["round_stretch"] = stretch
    report["stretch_bound"] = STRETCH_BOUND
    report["specs"] = {
        "bare": bare_spec(n, seed).to_json(),
        **{
            f"compiled-{strategy}": compiled_spec(
                n, seed, strategy, params
            ).to_json()
            for strategy, params in STRATEGIES
        },
    }
    return report


def render(report: dict) -> str:
    lines = [
        f"E19: robust-compiler recovery on the listing graph "
        f"(n={report['n']}, giant cc={report['logical_vertices']}, "
        f"fault budget={report['fault_budget']})",
        f"{'protocol':<26s} {'scenario':<20s} {'rounds':>7s} {'words':>9s} "
        f"{'stretch':>8s} {'recovers':>9s}",
    ]
    for protocol, per_scenario in report["summary"].items():
        for scenario, cell in per_scenario.items():
            stretch = (
                f"{cell['round_stretch']:.2f}x"
                if cell["round_stretch"] is not None
                else "-"
            )
            recovers = "yes" if cell["recovers_clean_digest"] else "NO"
            lines.append(
                f"{protocol:<26s} {scenario:<20s} "
                f"{cell['rounds']:>7d} {cell['words']:>9d} {stretch:>8s} "
                f"{recovers:>9s}"
            )
    lines.append("")
    lines.append(
        "acceptance: bare diverges under every fault scenario; both "
        f"compiled strategies recover the clean digest within "
        f"{report['stretch_bound']}x stretch"
    )
    return "\n".join(lines)


def export_traces(n: int, seed: int, trace_dir: Path) -> list[Path]:
    """One fully traced compiled cell under crash faults: the artifact pair.

    The JSONL stream carries the per-round engine events *including* the
    ``vertex_crashed`` markers the fault interface added, so the timeline
    shows replicas dying while the compiled protocol keeps delivering.
    """
    from repro.engine.registry import scenario_registry
    from repro.engine.runner import run_algorithm
    from repro.experiments.spec import workload_registry

    trace_dir.mkdir(parents=True, exist_ok=True)
    graph = listing_workload_giant_component(n)
    scenario_name, params = _seeded(SCENARIO_GRID[1], seed)
    scenario = scenario_registry.get(scenario_name)(**params)
    compiled = compile_robust(
        workload_registry.get("bfs-tree")(), strategy="replication", f=2
    )
    jsonl_path = trace_dir / "e19_compiled_crash.jsonl"
    with JsonlTracer(jsonl_path) as tracer:
        clean = run_algorithm(graph, compiled.algorithm, backend="vectorized")
        run = compiled.run(
            graph,
            backend="vectorized",
            scenario=scenario,
            tracer=tracer,
            baseline_rounds=clean.rounds,
        )
    assert run.outputs == clean.outputs, "traced compiled run lost recovery"
    events = read_jsonl_events(jsonl_path)
    assert any(event["kind"] == "vertex_crashed" for event in events), (
        "trace artifact is missing the vertex_crashed events"
    )
    chrome_path = write_chrome_trace(
        events, trace_dir / "e19_compiled_crash_chrome.json"
    )
    return [jsonl_path, chrome_path]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report ('-' to skip; default: the "
            "committed BENCH_e19.json, skipped under --smoke)"
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="200-vertex configuration only (the CI tier-2 job)",
    )
    parser.add_argument(
        "--trace-dir",
        type=Path,
        default=None,
        help="also run one fully traced compiled cell under crash faults "
        "and write its JSONL events + Chrome timeline into this directory",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.n = 200
    report = run_experiment(args.n, seed=args.seed)
    print(render(report))
    if args.trace_dir is not None:
        for path in export_traces(args.n, args.seed, args.trace_dir):
            print(f"wrote {path}")
    json_path = args.json
    if json_path is None and not args.smoke:
        json_path = Path(__file__).resolve().parent.parent / "BENCH_e19.json"
    if json_path is not None and str(json_path) != "-":
        json_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {json_path}")
    return 0


def test_benchmark_smoke():
    """Tier-2 entry point for the pytest harness."""
    report = run_experiment(200, seed=7)
    assert report["bare_broken"]
    for per_scenario in report["round_stretch"].values():
        assert all(value <= STRETCH_BOUND for value in per_scenario.values())


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
