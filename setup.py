"""Setuptools shim so editable installs work without the wheel package.

The environment this reproduction targets is fully offline; ``pip`` cannot
fetch ``wheel`` for PEP 517 editable builds, so we keep a legacy ``setup.py``
alongside ``pyproject.toml`` and install with ``--no-use-pep517``.
"""

from setuptools import setup

setup()
