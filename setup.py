"""Setuptools shim so editable installs work without the wheel package.

The environment this reproduction targets is fully offline; ``pip`` cannot
fetch ``wheel`` for PEP 517 editable builds, so we keep a legacy ``setup.py``
and install with ``pip install -e . --no-use-pep517``.  The ``src`` layout
is declared here so the install works without any ``PYTHONPATH`` workaround.
"""

from setuptools import find_packages, setup

setup(
    name="repro-congest-clique-listing",
    version="1.5.0",
    description=(
        "Reproduction of 'Deterministic Near-Optimal Distributed Listing of "
        "Cliques' (Censor-Hillel, Leitersdorf, Vulakh; PODC 2022) with a "
        "pluggable high-performance CONGEST execution engine"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "networkx>=2.8",
        "numpy>=1.22",
    ],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
