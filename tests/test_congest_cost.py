"""Tests of the cost-accounted executor primitives."""

import pytest

from repro.congest.cost import (
    BandwidthModel,
    CostAccountant,
    polylog_overhead,
    subpolynomial_overhead,
    unit_overhead,
)


class TestOverheadModels:
    def test_unit_overhead_is_one(self):
        assert unit_overhead()(10) == 1.0
        assert unit_overhead()(10**6) == 1.0

    def test_polylog_overhead_grows_slowly(self):
        overhead = polylog_overhead()
        assert overhead(2) == pytest.approx(1.0)
        assert overhead(1024) == pytest.approx(10.0)
        assert overhead(1024) < overhead(10**6)

    def test_subpolynomial_dominates_polylog_eventually(self):
        poly = polylog_overhead()
        sub = subpolynomial_overhead()
        n = 10**6
        assert sub(n) > poly(n)

    def test_overhead_is_at_least_one(self):
        assert polylog_overhead()(2) >= 1.0
        assert subpolynomial_overhead()(2) >= 1.0


class TestBandwidthModel:
    def test_zero_load_costs_nothing(self):
        assert BandwidthModel(n=100, min_degree=5).rounds_for_load(0) == 0

    def test_rounds_are_ceiling_of_load_over_degree(self):
        model = BandwidthModel(n=100, min_degree=4)
        assert model.rounds_for_load(4) == 1
        assert model.rounds_for_load(5) == 2
        assert model.rounds_for_load(17) == 5

    def test_degenerate_degree_treated_as_one(self):
        assert BandwidthModel(n=100, min_degree=0).rounds_for_load(3) == 3


class TestCostAccountant:
    def test_rejects_empty_network(self):
        with pytest.raises(ValueError):
            CostAccountant(n=0)

    def test_local_rounds_rounds_up(self):
        accountant = CostAccountant(n=16, overhead=unit_overhead())
        assert accountant.local_rounds(2.3, phase="x") == 3
        assert accountant.metrics.rounds == 3

    def test_route_within_cluster_applies_overhead(self):
        accountant = CostAccountant(n=1024, overhead=polylog_overhead())
        rounds = accountant.route_within_cluster(
            max_words_per_vertex=100, min_degree=10, phase="r"
        )
        assert rounds == 100  # ceil(100/10) * log2(1024)
        assert accountant.metrics.rounds == 100

    def test_direct_exchange_uses_max_of_send_and_receive(self):
        accountant = CostAccountant(n=16, overhead=unit_overhead())
        rounds = accountant.direct_exchange(
            max_words_sent_per_vertex=3,
            max_words_received_per_vertex=9,
            min_degree=3,
            phase="d",
        )
        assert rounds == 3

    def test_broadcast_scales_with_total_and_log_cluster(self):
        accountant = CostAccountant(n=1024, overhead=unit_overhead())
        small = accountant.broadcast_in_cluster(
            total_words=10, cluster_size=4, min_degree=5, phase="b1"
        )
        large = accountant.broadcast_in_cluster(
            total_words=1000, cluster_size=4, min_degree=5, phase="b2"
        )
        assert large > small

    def test_chain_state_passes_linear_in_passes(self):
        accountant = CostAccountant(n=16, overhead=unit_overhead())
        one = accountant.chain_state_passes(passes=1, state_words=4, min_degree=8, phase="c")
        ten = accountant.chain_state_passes(passes=10, state_words=4, min_degree=8, phase="c")
        assert ten == 10 * one

    def test_phase_report_sorted_by_cost(self):
        accountant = CostAccountant(n=16, overhead=unit_overhead())
        accountant.local_rounds(1, phase="small")
        accountant.local_rounds(10, phase="big")
        report = accountant.phase_report()
        assert list(report)[0] == "big"
