"""Shared fixtures for the test suite: small deterministic workload graphs.

Workload *builders* (the broadcast blob algorithm, the engine equivalence
graph matrix, the distributed-listing scaling graph) are shared with the
benchmark harness and live in ``benchmarks/common.py``; this conftest puts
that directory on ``sys.path`` so test modules can ``from common import``
the same definitions instead of duplicating them.
"""

from __future__ import annotations

import sys
from pathlib import Path

import networkx as nx
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from repro.graphs import (  # noqa: E402  (after the sys.path entry above)
    clustered_communities,
    erdos_renyi,
    expander_like,
    planted_cliques,
    ring_of_cliques,
)


@pytest.fixture(scope="session")
def small_dense_graph() -> nx.Graph:
    """A dense 40-vertex graph with many triangles and K4s."""
    return erdos_renyi(40, 14.0, seed=7)


@pytest.fixture(scope="session")
def planted_graph() -> nx.Graph:
    """Sparse background plus planted K5s (so K3..K5 all exist)."""
    return planted_cliques(70, 5, 6, background_avg_degree=4.0, seed=11)


@pytest.fixture(scope="session")
def community_graph() -> nx.Graph:
    """Planted-partition graph: the natural expander-decomposition workload."""
    return clustered_communities(4, 18, intra_p=0.6, inter_p=0.02, seed=3)


@pytest.fixture(scope="session")
def expander_graph() -> nx.Graph:
    """Random regular graph: a single high-conductance cluster."""
    return expander_like(48, degree=8, seed=5)


@pytest.fixture(scope="session")
def clique_ring() -> nx.Graph:
    """Fully deterministic ring of cliques with known clique counts."""
    return ring_of_cliques(6, 6)


@pytest.fixture(scope="session")
def tiny_triangle_graph() -> nx.Graph:
    """A handful of vertices with exactly two triangles sharing an edge."""
    graph = nx.Graph()
    graph.add_edges_from([(0, 1), (1, 2), (0, 2), (2, 3), (1, 3), (3, 4)])
    return graph
