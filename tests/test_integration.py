"""Cross-module integration tests: the full pipeline on realistic workloads."""

import networkx as nx
import pytest

from repro import TriangleListing, list_cliques, list_triangles, validate_listing
from repro.baselines import congested_clique_listing, cs20_triangle_listing, naive_listing
from repro.congest.cost import unit_overhead
from repro.graphs import (
    clustered_communities,
    count_cliques,
    erdos_renyi,
    planted_cliques,
)


class TestFullPipelineAgreement:
    """All four independent listing strategies must agree exactly."""

    def test_all_strategies_agree_on_triangles(self):
        graph = planted_cliques(80, 4, 8, background_avg_degree=4.0, seed=13)
        deterministic = list_triangles(graph).cliques
        naive = naive_listing(graph, p=3).cliques
        clique_model, _ = congested_clique_listing(graph, p=3)
        cs20 = cs20_triangle_listing(graph).cliques
        assert deterministic == naive == clique_model.cliques == cs20

    def test_all_strategies_agree_on_k4(self):
        graph = planted_cliques(60, 5, 5, background_avg_degree=3.0, seed=17)
        deterministic = list_cliques(graph, 4).cliques
        naive = naive_listing(graph, p=4).cliques
        clique_model, _ = congested_clique_listing(graph, p=4)
        assert deterministic == naive == clique_model.cliques


class TestScalingShape:
    """Coarse sanity checks of the round-complexity shape (full sweeps live in
    the benchmark harness)."""

    def test_triangle_rounds_grow_sublinearly_on_dense_graphs(self):
        small_n, large_n = 80, 320
        small = list_triangles(erdos_renyi(small_n, 0.3 * small_n, seed=2),
                               overhead=unit_overhead())
        large = list_triangles(erdos_renyi(large_n, 0.3 * large_n, seed=2),
                               overhead=unit_overhead())
        growth = large.rounds / max(1, small.rounds)
        assert growth < (large_n / small_n)  # strictly sublinear in n

    def test_new_algorithm_grows_slower_than_naive_on_dense_graphs(self):
        """Naive neighbourhood exchange is Θ(Δ) = Θ(n) on dense graphs; the
        paper's algorithm grows like n^{1/3+o(1)}, so its growth factor over a
        4x size increase must be strictly smaller."""
        small_n, large_n = 100, 400
        small_graph = erdos_renyi(small_n, 0.4 * small_n, seed=5)
        large_graph = erdos_renyi(large_n, 0.4 * large_n, seed=5)
        new_small = list_triangles(small_graph, overhead=unit_overhead())
        new_large = list_triangles(large_graph, overhead=unit_overhead())
        assert new_large.cliques == naive_listing(large_graph, p=3).cliques
        naive_growth = naive_listing(large_graph, p=3).rounds / naive_listing(small_graph, p=3).rounds
        new_growth = new_large.rounds / max(1, new_small.rounds)
        assert new_growth < naive_growth


class TestRecursionBehaviour:
    def test_multi_level_recursion_on_community_graphs(self):
        graph = clustered_communities(5, 14, intra_p=0.6, inter_p=0.06, seed=2)
        result = list_triangles(graph)
        assert validate_listing(graph, result).correct
        assert result.levels >= 1
        # Residual edges must shrink monotonically across levels.
        residuals = [report.residual_edges for report in result.level_reports]
        assert residuals == sorted(residuals, reverse=True)

    def test_fallback_covers_pathological_graphs(self):
        """A star graph has no dense clusters; the safety net must still give
        a correct (empty) answer without crashing."""
        graph = nx.star_graph(40)
        result = list_triangles(graph)
        assert result.cliques == set()

    def test_max_levels_one_still_correct_via_fallback(self):
        graph = clustered_communities(3, 16, intra_p=0.5, inter_p=0.05, seed=9)
        result = TriangleListing(max_levels=1).run(graph)
        assert validate_listing(graph, result).correct


class TestWorkloadGroundTruths:
    def test_planted_cliques_all_found(self):
        graph = planted_cliques(90, 5, 7, background_avg_degree=2.0, seed=23)
        for p in (3, 4, 5):
            result = list_cliques(graph, p)
            assert len(result.cliques) == count_cliques(graph, p)

    def test_disconnected_graph(self):
        graph = nx.disjoint_union(nx.complete_graph(5), nx.complete_graph(6))
        graph = nx.convert_node_labels_to_integers(graph)
        result = list_cliques(graph, 4)
        assert validate_listing(graph, result).correct
