"""Tests of communication clusters (Definitions 7, 15, 24) and cluster routing."""

import networkx as nx
import pytest

from repro.congest.cost import CostAccountant, unit_overhead
from repro.decomposition.cluster import (
    CommunicationCluster,
    K3CompatibleCluster,
    KpCompatibleCluster,
    augmented_edge_set,
    build_communication_cluster,
    core_edge_set,
    core_vertices,
)
from repro.decomposition.routing import ClusterRouter
from repro.graphs import clustered_communities, erdos_renyi


def _whole_graph_cluster(graph, delta):
    return build_communication_cluster(graph, graph.edges, delta=delta)


class TestCoreConstructions:
    def test_core_vertices_majority_rule(self):
        # Vertex 0 has 3 edges inside the "cluster" {0,1,2,3} and 1 outside.
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)])
        cluster_edges = [(0, 1), (0, 2), (0, 3), (1, 2)]
        core = core_vertices(graph, cluster_edges)
        assert 0 in core
        assert 1 in core and 2 in core
        assert 4 not in core

    def test_core_edges_subset_of_cluster_edges(self, community_graph):
        some_edges = list(community_graph.edges)[: community_graph.number_of_edges() // 2]
        core_edges = core_edge_set(community_graph, some_edges)
        assert core_edges <= {tuple(sorted(e)) for e in some_edges}

    def test_augmented_edges_superset(self, community_graph):
        some_edges = list(community_graph.edges)[: community_graph.number_of_edges() // 2]
        augmented = augmented_edge_set(community_graph, some_edges)
        assert {tuple(sorted(e)) for e in some_edges} <= augmented


class TestCommunicationCluster:
    def test_v_minus_respects_delta(self, small_dense_graph):
        cluster = _whole_graph_cluster(small_dense_graph, delta=5)
        cluster.validate()
        for vertex in cluster.v_minus:
            assert cluster.communication_degree(vertex) >= 5

    def test_notation_sizes(self, small_dense_graph):
        cluster = _whole_graph_cluster(small_dense_graph, delta=1)
        assert cluster.n == small_dense_graph.number_of_nodes()
        assert cluster.big_k == small_dense_graph.number_of_nodes()
        assert cluster.k == len(cluster.v_minus)

    def test_v_star_has_at_least_half_average_degree(self, small_dense_graph):
        cluster = _whole_graph_cluster(small_dense_graph, delta=3)
        mu = cluster.mu
        for vertex in cluster.v_star:
            assert cluster.communication_degree(vertex) >= mu / 2

    def test_v_star_volume_at_least_half(self, small_dense_graph):
        """The counting argument inside Lemma 20: Vol(V*) >= Vol(V^-)/2."""
        cluster = _whole_graph_cluster(small_dense_graph, delta=3)
        star_volume = sum(cluster.communication_degree(v) for v in cluster.v_star)
        total_volume = sum(cluster.communication_degree(v) for v in cluster.v_minus)
        assert star_volume * 2 >= total_volume

    def test_ordered_members_sorted(self, small_dense_graph):
        cluster = _whole_graph_cluster(small_dense_graph, delta=3)
        members = cluster.ordered_members()
        assert members == sorted(members)

    def test_low_degree_partition(self, small_dense_graph):
        cluster = _whole_graph_cluster(small_dense_graph, delta=1000)
        assert cluster.k == 0
        assert cluster.v_low == frozenset(small_dense_graph.nodes)


class TestK3CompatibleCluster:
    def test_delta_is_cube_root_of_cluster_size(self, small_dense_graph):
        cluster = K3CompatibleCluster.from_edges(small_dense_graph, small_dense_graph.edges)
        assert cluster.delta == pytest.approx(cluster.big_k ** (1 / 3))


class TestKpCompatibleCluster:
    def test_requires_p_above_three(self, small_dense_graph):
        with pytest.raises(ValueError):
            KpCompatibleCluster.from_edges(small_dense_graph, small_dense_graph.edges, p=3)

    def test_boundary_edges_point_into_v_minus(self, community_graph):
        edges = [e for e in community_graph.edges if e[0] < 30 and e[1] < 30]
        cluster = KpCompatibleCluster.from_edges(community_graph, edges, p=4, delta=2)
        cluster.attach_boundary_edges()
        for tail, head in cluster.e_bar:
            assert head in cluster.v_minus
            assert tail not in cluster.v_minus
            assert community_graph.has_edge(tail, head)

    def test_import_requires_member_holder(self, community_graph):
        edges = [e for e in community_graph.edges if e[0] < 30 and e[1] < 30]
        cluster = KpCompatibleCluster.from_edges(community_graph, edges, p=4, delta=2)
        outsider = max(community_graph.nodes)
        with pytest.raises(ValueError):
            cluster.import_outside_edges([(1, 2)], holder=outsider)

    def test_deg_star_counts_imported_edges(self, community_graph):
        edges = [e for e in community_graph.edges if e[0] < 30 and e[1] < 30]
        cluster = KpCompatibleCluster.from_edges(community_graph, edges, p=4, delta=2)
        cluster.attach_boundary_edges()
        holder = cluster.ordered_members()[0]
        cluster.import_outside_edges([(60, 61), (60, 62)], holder=holder)
        cluster.compute_deg_star()
        assert cluster.input_degree(60) == 2 + sum(1 for u, _ in cluster.e_bar if u == 60)

    def test_split_graph_parts_cover_all_vertices(self, community_graph):
        edges = [e for e in community_graph.edges if e[0] < 30 and e[1] < 30]
        cluster = KpCompatibleCluster.from_edges(community_graph, edges, p=4, delta=2)
        v1, v2 = cluster.split_graph_parts()
        assert v1 | v2 == set(community_graph.nodes)
        assert not v1 & v2


class TestClusterRouter:
    def _router(self, graph, delta=3):
        cluster = _whole_graph_cluster(graph, delta=delta)
        accountant = CostAccountant(n=graph.number_of_nodes(), overhead=unit_overhead())
        return ClusterRouter(cluster=cluster, accountant=accountant)

    def test_route_rounds_scale_with_load(self, small_dense_graph):
        router = self._router(small_dense_graph)
        small = router.route(max_words_per_vertex=10)
        large = router.route(max_words_per_vertex=1000)
        assert large > small

    def test_route_proportional_ignores_degree_spread(self, small_dense_graph):
        router = self._router(small_dense_graph)
        assert router.route_proportional(load_per_degree=7) == 7

    def test_broadcast_and_chain_charge_rounds(self, small_dense_graph):
        router = self._router(small_dense_graph)
        before = router.accountant.metrics.rounds
        router.broadcast(total_words=50)
        router.chain_passes(passes=4, state_words=8)
        router.diameter_rounds()
        assert router.accountant.metrics.rounds > before

    def test_phase_prefixing(self, small_dense_graph):
        cluster = _whole_graph_cluster(small_dense_graph, delta=3)
        accountant = CostAccountant(n=40, overhead=unit_overhead())
        router = ClusterRouter(cluster=cluster, accountant=accountant, phase_prefix="abc")
        router.route(max_words_per_vertex=10, phase="xyz")
        assert any(key.startswith("abc:xyz") for key in accountant.metrics.phase_rounds)
