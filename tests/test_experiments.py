"""Tests of the declarative experiment API and the composable scenarios."""

import json

import networkx as nx
import pytest

from repro.engine import (
    BurstyFaultScenario,
    CleanSynchronous,
    ComposedScenario,
    HeterogeneousBandwidthScenario,
    LinkDropScenario,
    available_scenarios,
    register_scenario,
    scenario_registry,
)
from repro.experiments import (
    ExperimentSpec,
    ResultSet,
    Session,
    graph_source_registry,
    register_graph_source,
    register_workload,
    workload_registry,
)

ALL_BACKENDS = ["reference", "vectorized", "sharded"]

SPEC_KWARGS = dict(
    name="unit",
    graph="erdos-renyi",
    graph_params={"n": 24, "avg_degree": 5.0, "seed": 3},
    workload="flood-min",
    seeds=(0, 1),
)


class TestExperimentSpec:
    def test_json_round_trip_identity(self):
        spec = ExperimentSpec(
            **SPEC_KWARGS,
            backend="sharded",
            backend_params={"num_workers": 2},
            scenario="link-drop",
            scenario_params={"drop_probability": 0.2},
            repeats=2,
            max_rounds=500,
        )
        payload = json.loads(json.dumps(spec.to_json()))
        assert ExperimentSpec.from_json(payload) == spec

    def test_unknown_graph_source_lists_names(self):
        with pytest.raises(ValueError, match="unknown graph source") as excinfo:
            ExperimentSpec(graph="moebius-strip")
        assert str(graph_source_registry.names()) in str(excinfo.value)

    def test_unknown_workload_lists_names(self):
        with pytest.raises(ValueError, match="unknown workload") as excinfo:
            ExperimentSpec(workload="sorting")
        assert str(workload_registry.names()) in str(excinfo.value)

    def test_unknown_backend_and_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ExperimentSpec(**SPEC_KWARGS, backend="gpu")
        with pytest.raises(ValueError, match="unknown scenario"):
            ExperimentSpec(**SPEC_KWARGS, scenario="solar-flare")

    def test_zero_argument_spec_is_runnable(self):
        result = Session().run(ExperimentSpec())
        assert result.halted and result.n == 64
        payload = {"name": "defaults-only"}
        assert ExperimentSpec.from_json(payload).name == "defaults-only"

    def test_missing_required_builder_params_fail_eagerly(self):
        # bind (not bind_partial): a spec omitting a required parameter of
        # its graph source fails at construction, not mid-sweep.
        with pytest.raises(ValueError, match="graph source"):
            ExperimentSpec(graph="erdos-renyi", graph_params={})

    def test_bad_parameters_fail_eagerly(self):
        with pytest.raises(ValueError, match="graph source"):
            ExperimentSpec(
                graph="erdos-renyi",
                graph_params={"n": 10, "avg_degree": 2.0, "bogus": 1},
            )
        with pytest.raises(ValueError):
            ExperimentSpec(
                **SPEC_KWARGS,
                scenario="link-drop",
                scenario_params={"drop_probability": 2.0},
            )
        with pytest.raises(ValueError, match="seeds"):
            ExperimentSpec(**{**SPEC_KWARGS, "seeds": ()})
        with pytest.raises(ValueError, match="repeats"):
            ExperimentSpec(**SPEC_KWARGS, repeats=0)
        with pytest.raises(ValueError, match="max_rounds"):
            ExperimentSpec(**SPEC_KWARGS, max_rounds=0)

    def test_live_objects_execute_but_refuse_serialisation(self):
        spec = ExperimentSpec(**{**SPEC_KWARGS, "graph": nx.path_graph(6)})
        result = Session().run(spec)
        assert result.halted
        with pytest.raises(ValueError, match="graph"):
            spec.to_json()

    def test_backend_params_are_actually_applied(self):
        from repro.engine import ShardedBackend

        spec = ExperimentSpec(
            **SPEC_KWARGS, backend="sharded", backend_params={"num_workers": 2}
        )
        engine = spec._build_backend()
        assert isinstance(engine, ShardedBackend) and engine.num_workers == 2
        # A grid cell naming a different backend must not inherit the
        # spec's params (ReferenceBackend has no num_workers).
        assert spec._build_backend("reference").name == "reference"
        # (name, params) pairs configure individual grid cells.
        cell = spec._build_backend(("sharded", {"num_workers": 3}))
        assert cell.num_workers == 3

    def test_workload_params_rejected_for_live_objects(self):
        from repro.baselines.naive import FloodMinimum

        with pytest.raises(ValueError, match="workload_params only apply"):
            ExperimentSpec(
                **{**SPEC_KWARGS, "workload": FloodMinimum},
                workload_params={"payload_words": 64},
            )

    def test_from_json_rejects_unknown_fields_listing_payload_keys(self):
        payload = ExperimentSpec(**SPEC_KWARGS).to_json()
        payload["scheduler"] = "round-robin"
        with pytest.raises(ValueError, match="unknown spec fields") as excinfo:
            ExperimentSpec.from_json(payload)
        # The 'known' list must name the accepted *payload* keys, not the
        # dataclass field names (graph_params etc. are not payload keys).
        assert "'algorithm'" in str(excinfo.value)
        assert "graph_params" not in str(excinfo.value)

    def test_from_json_accepts_flat_name_strings(self):
        spec = ExperimentSpec.from_json(
            {
                "name": "flat",
                "graph": {"source": "erdos-renyi",
                          "params": {"n": 20, "avg_degree": 4.0, "seed": 1}},
                "algorithm": "flood-min",       # bare string, no params
                "backend": "vectorized",
                "scenario": "bursty",
            }
        )
        assert spec.workload == "flood-min" and spec.scenario == "bursty"
        assert Session().run(spec).halted
        with pytest.raises(ValueError, match="must be a name string"):
            ExperimentSpec.from_json({"graph": 42})

    def test_pinned_scenario_seed_with_multi_seed_sweep_rejected(self):
        with pytest.raises(ValueError, match="pins 'seed'"):
            ExperimentSpec(
                **SPEC_KWARGS,          # seeds=(0, 1)
                scenario="link-drop",
                scenario_params={"drop_probability": 0.1, "seed": 5},
            )
        # A single-seed spec may pin the scenario seed explicitly.
        ExperimentSpec(
            **{**SPEC_KWARGS, "seeds": (0,)},
            scenario="link-drop",
            scenario_params={"seed": 5},
        )


class TestSession:
    def test_seed_sweep_determinism_same_digest(self):
        spec = ExperimentSpec(**SPEC_KWARGS, scenario="link-drop")
        first = Session().sweep(spec)
        second = Session().sweep(spec)
        assert first.digest() == second.digest()
        assert len(first) == len(spec.seeds)

    def test_distinct_seeds_produce_distinct_cells(self):
        spec = ExperimentSpec(**SPEC_KWARGS, scenario="heterogeneous-bandwidth")
        results = Session().sweep(spec)
        by_seed = {result.seed: result for result in results}
        assert set(by_seed) == {0, 1}
        # The sweep seed is injected into the scenario's constructor, so the
        # two cells ran genuinely different delivery randomness.
        assert "seed=0" in by_seed[0].scenario
        assert "seed=1" in by_seed[1].scenario

    def test_grid_runs_every_cell_and_backends_agree(self):
        spec = ExperimentSpec(**{**SPEC_KWARGS, "seeds": (0,)})
        results = Session().grid(
            spec,
            backends=ALL_BACKENDS,
            scenarios=["clean", "link-drop", "bursty", "heterogeneous-bandwidth"],
        )
        assert len(results) == 3 * 4
        results.check_backend_agreement()
        # Per-cell grouping: every cell holds one result per backend.
        for cell in results.by_cell().values():
            assert sorted(r.backend for r in cell) == sorted(ALL_BACKENDS)

    def test_spec_scenario_params_do_not_leak_to_other_grid_scenarios(self):
        spec = ExperimentSpec(
            **{**SPEC_KWARGS, "seeds": (0,)},
            scenario="link-drop",
            scenario_params={"drop_probability": 0.2},
        )
        # "clean" takes no constructor arguments; before the fix this grid
        # crashed with TypeError because the spec's link-drop params were
        # applied to every named cell.
        results = Session().grid(spec, scenarios=["clean", "link-drop"])
        results.check_backend_agreement()
        labels = {r.scenario_name for r in results}
        assert labels == {"clean", "link-drop"}
        drop_cell = next(r for r in results if r.scenario_name == "link-drop")
        assert "q=0.2" in drop_cell.scenario  # spec params still apply to it

    def test_same_scenario_different_params_are_distinct_cells(self):
        spec = ExperimentSpec(**{**SPEC_KWARGS, "seeds": (0,)})
        results = Session().grid(
            spec,
            backends=["reference", "vectorized"],
            scenarios=[
                ("link-drop", {"drop_probability": 0.05}),
                ("link-drop", {"drop_probability": 0.5}),
            ],
        )
        # Two parameterizations of one scenario name are separate cells, so
        # the agreement check compares backends within each, not across.
        assert len(results.by_cell()) == 2
        results.check_backend_agreement()

    def test_instances_with_default_describe_are_distinct_cells(self):
        from repro.engine import DeliveryScenario
        from repro.engine.scenarios import _HASH_DENOM, _stable_hash

        class Murky(DeliveryScenario):
            # Deliberately no describe() override: both instances print as
            # the bare class name, yet they must remain distinct grid cells.
            def __init__(self, q):
                self.q = q

            def transmits(self, edge, round_index):
                draw = _stable_hash("murky", edge, round_index) / _HASH_DENOM
                return draw >= self.q

        spec = ExperimentSpec(**{**SPEC_KWARGS, "seeds": (0,)})
        results = Session().grid(
            spec, backends=["reference", "vectorized"],
            scenarios=[Murky(0.0), Murky(0.6)],
        )
        assert len(results.by_cell()) == 2
        results.check_backend_agreement()

    def test_backend_agreement_catches_divergence(self):
        spec = ExperimentSpec(**{**SPEC_KWARGS, "seeds": (0,)})
        results = Session().grid(spec, backends=["reference", "vectorized"])
        results.results[1].rounds += 1
        with pytest.raises(AssertionError, match="diverged"):
            results.check_backend_agreement()

    def test_repeats_collect_samples_and_assert_determinism(self):
        spec = ExperimentSpec(**{**SPEC_KWARGS, "seeds": (0,)}, repeats=3)
        result = Session().run(spec)
        assert len(result.seconds) == 3

    def test_to_json_matches_bench_shape(self):
        spec = ExperimentSpec(**{**SPEC_KWARGS, "seeds": (0,)})
        report = Session().sweep(spec).to_json()
        assert set(report) == {"experiment", "workload", "rows"}
        row = report["rows"][0]
        for key in ("n", "edges", "backend", "scenario", "rounds", "words",
                    "dropped", "seconds", "output_digest"):
            assert key in row

    def test_keep_outputs(self):
        spec = ExperimentSpec(**{**SPEC_KWARGS, "seeds": (0,)})
        kept = Session(keep_outputs=True).run(spec)
        discarded = Session().run(spec)
        assert kept.outputs is not None and len(kept.outputs) == 24
        assert discarded.outputs is None
        assert kept.output_digest == discarded.output_digest

    def test_driver_workload_distributed_listing(self, tiny_triangle_graph):
        spec = ExperimentSpec(
            name="listing-cell",
            graph=tiny_triangle_graph,
            workload="distributed-listing",
            seeds=(0,),
            max_rounds=5_000,
        )
        results = Session(keep_outputs=True).grid(spec, backends=ALL_BACKENDS)
        results.check_backend_agreement()
        for result in results:
            assert result.outputs["cliques"] == ((0, 1, 2), (1, 2, 3))

    def test_live_driver_object_recognised_as_driver(self, tiny_triangle_graph):
        from repro.experiments.workloads import distributed_listing_workload

        runner = distributed_listing_workload()   # a built driver, not a name
        spec = ExperimentSpec(
            name="live-driver",
            graph=tiny_triangle_graph,
            workload=runner,
            seeds=(0,),
            max_rounds=5_000,
        )
        assert spec.workload_kind() == "driver"
        result = Session(keep_outputs=True).run(spec)
        assert result.outputs["cliques"] == ((0, 1, 2), (1, 2, 3))

    def test_grid_pair_pinning_seed_on_multi_seed_spec_rejected(self):
        spec = ExperimentSpec(**SPEC_KWARGS)      # seeds=(0, 1)
        with pytest.raises(ValueError, match="pins 'seed'"):
            Session().grid(
                spec, scenarios=[("link-drop", {"seed": 5})]
            )


class TestOpenRegistries:
    def test_custom_workload_and_graph_source_round_trip(self):
        @register_graph_source("unit-star")
        def star(n: int):
            return nx.star_graph(n - 1)

        @register_workload("unit-flood")
        def flood():
            from repro.baselines.naive import FloodMinimum

            return FloodMinimum

        try:
            spec = ExperimentSpec(
                graph="unit-star", graph_params={"n": 9},
                workload="unit-flood", seeds=(0,),
            )
            assert ExperimentSpec.from_json(spec.to_json()) == spec
            result = Session().run(spec)
            assert result.n == 9 and result.halted
        finally:
            graph_source_registry.entries.pop("unit-star")
            workload_registry.entries.pop("unit-flood")

    def test_custom_scenario_registers_and_resolves(self):
        @register_scenario("unit-blackout")
        class Blackout(CleanSynchronous):
            pass

        try:
            assert "unit-blackout" in available_scenarios()
            spec = ExperimentSpec(**SPEC_KWARGS, scenario="unit-blackout")
            assert Session().run(spec).halted
        finally:
            scenario_registry.entries.pop("unit-blackout")

    def test_workload_kind_validated(self):
        with pytest.raises(ValueError, match="kind"):
            register_workload("broken", kind="quantum")

    def test_alias_registration_keeps_canonical_class_name(self):
        from repro.engine import VectorizedBackend, register_backend, resolve_backend
        from repro.engine.registry import backend_registry

        register_backend("unit-fast")(VectorizedBackend)
        try:
            assert VectorizedBackend.name == "vectorized"   # not renamed
            engine = resolve_backend("unit-fast")
            assert isinstance(engine, VectorizedBackend)
            assert engine.name == "vectorized"
        finally:
            backend_registry.entries.pop("unit-fast")

    def test_large_numpy_outputs_digest_exactly(self):
        import numpy as np

        from repro.experiments.session import _digest_outputs

        base = np.arange(2000)
        tweaked = base.copy()
        tweaked[1000] += 1   # inside the region repr() elides with '...'
        assert _digest_outputs({0: base}) != _digest_outputs({0: tweaked})
        assert _digest_outputs({0: base}) == _digest_outputs({0: base.copy()})
        assert _digest_outputs({0: [base, "x"]}) != _digest_outputs(
            {0: [tweaked, "x"]}
        )


class TestComposableScenarios:
    def test_overlay_with_clean_is_identity(self):
        drop = LinkDropScenario(drop_probability=0.3, seed=5)
        composed = ComposedScenario.overlay("clean", drop)
        for edge in [(0, 1), (4, 2)]:
            for round_index in range(40):
                assert composed.transmits(edge, round_index) == drop.transmits(
                    edge, round_index
                )

    def test_and_operator_and_is_clean(self):
        both_clean = CleanSynchronous() & CleanSynchronous()
        assert both_clean.is_clean
        faulty = CleanSynchronous() & LinkDropScenario(0.5)
        assert not faulty.is_clean

    def test_sequential_switches_regimes(self):
        never = BurstyFaultScenario(
            burst_probability=0.99, burst_length=8, period=9, seed=1
        )
        seq = ComposedScenario.sequential(("clean", 10), (never, None))
        edge = (0, 1)
        assert all(seq.transmits(edge, r) for r in range(10))
        later = [seq.transmits(edge, r) for r in range(10, 60)]
        assert not all(later)

    def test_sequential_validation(self):
        with pytest.raises(ValueError, match="durations"):
            ComposedScenario(["clean", "link-drop"], mode="sequential")
        with pytest.raises(ValueError, match="at least one part"):
            ComposedScenario([])
        with pytest.raises(ValueError, match="mode"):
            ComposedScenario(["clean"], mode="parallel")
        with pytest.raises(ValueError, match="durations only apply"):
            ComposedScenario(["clean"], durations=(5,))

    def test_bursty_outages_are_contiguous(self):
        scenario = BurstyFaultScenario(
            burst_probability=1.0 - 1e-9, burst_length=4, period=10, seed=2
        )
        edge = (3, 7)
        window = [scenario.transmits(edge, r) for r in range(10)]
        down = [i for i, up in enumerate(window) if not up]
        assert len(down) == 4
        assert down == list(range(down[0], down[0] + 4))

    def test_bursty_validation(self):
        with pytest.raises(ValueError, match="burst probability"):
            BurstyFaultScenario(burst_probability=1.0)
        with pytest.raises(ValueError, match="burst length"):
            BurstyFaultScenario(burst_length=0)
        with pytest.raises(ValueError, match="period"):
            BurstyFaultScenario(burst_length=5, period=5)

    def test_heterogeneous_bandwidth_rate_and_symmetry(self):
        scenario = HeterogeneousBandwidthScenario(capacities=(0.25,), seed=0)
        assert scenario.capacity((0, 1)) == scenario.capacity((1, 0)) == 0.25
        crossings = sum(scenario.transmits((0, 1), r) for r in range(100))
        assert crossings == 25
        explicit = HeterogeneousBandwidthScenario(
            edge_capacities={(0, 1): 0.5}, seed=0
        )
        assert explicit.capacity((1, 0)) == 0.5

    def test_heterogeneous_bandwidth_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            HeterogeneousBandwidthScenario(capacities=(0.0,))
        with pytest.raises(ValueError, match="capacity"):
            HeterogeneousBandwidthScenario(edge_capacities={(0, 1): 1.5})
        with pytest.raises(ValueError, match="non-empty"):
            HeterogeneousBandwidthScenario(capacities=())

    def test_composed_scenario_equivalent_across_backends(self):
        spec = ExperimentSpec(
            **{**SPEC_KWARGS, "seeds": (0,), "scenario": ComposedScenario.overlay(
                LinkDropScenario(0.1, seed=3),
                BurstyFaultScenario(seed=4),
            )},
        )
        results = Session().grid(spec, backends=ALL_BACKENDS)
        results.check_backend_agreement()
        assert len(results) == 3


class TestComposedScenarioSpecs:
    """ComposedScenario trees as plain-JSON spec parameters."""

    NESTED_PARAMS = {
        "op": "overlay",
        "children": [
            {"name": "link-drop", "params": {"drop_probability": 0.15}},
            {
                "op": "sequential",
                "children": [
                    {"name": "clean", "params": {}},
                    {"name": "bursty", "params": {"burst_length": 2, "period": 8}},
                ],
                "durations": [40],
            },
        ],
    }

    def _spec(self, **overrides):
        kwargs = dict(
            **{**SPEC_KWARGS, "seeds": (0,)},
            scenario="composed",
            scenario_params=dict(self.NESTED_PARAMS),
        )
        kwargs.update(overrides)
        return ExperimentSpec(**kwargs)

    def test_json_round_trip_and_execution(self):
        spec = self._spec()
        payload = json.loads(json.dumps(spec.to_json()))
        assert ExperimentSpec.from_json(payload) == spec
        result = Session().run(spec)
        assert result.halted
        assert result.scenario.startswith("Composed[overlay]")

    def test_composed_cells_agree_across_backends(self):
        results = Session().grid(self._spec(), backends=ALL_BACKENDS)
        results.check_backend_agreement()
        assert len(results) == 3

    def test_sweep_seed_reaches_composed_children(self):
        spec = self._spec(seeds=(0, 1))
        results = Session().sweep(spec)
        by_seed = {result.seed: result for result in results}
        # The sweep seed is injected into every child that accepts one and
        # does not pin its own, so the two cells run different randomness.
        assert "seed=0" in by_seed[0].scenario
        assert "seed=1" in by_seed[1].scenario
        built = [
            spec._build_scenario(seed=seed) for seed in (0, 1)
        ]
        edge = (0, 1)
        decisions = [
            [scenario.transmits(edge, r) for r in range(200)]
            for scenario in built
        ]
        assert decisions[0] != decisions[1]

    def test_invalid_trees_fail_eagerly_at_spec_construction(self):
        with pytest.raises(ValueError, match="parameter-driven"):
            self._spec(scenario_params={"op": "overlay", "children": []})
        with pytest.raises(ValueError, match="unknown scenario"):
            self._spec(
                scenario_params={"op": "overlay", "children": ["solar-flare"]}
            )
        with pytest.raises(ValueError, match="'name' or 'op'"):
            self._spec(
                scenario_params={"op": "overlay", "children": [{"params": {}}]}
            )
        # A typo'd key must not silently build a default-configured child.
        with pytest.raises(ValueError, match="unknown keys.*parms"):
            self._spec(
                scenario_params={
                    "op": "overlay",
                    "children": [
                        {"name": "link-drop", "parms": {"drop_probability": 0.9}}
                    ],
                }
            )
        with pytest.raises(ValueError, match="unknown keys.*childs"):
            self._spec(
                scenario_params={
                    "op": "overlay",
                    "children": [{"op": "sequential", "childs": ["clean"]}],
                }
            )

    def test_spec_params_exports_a_live_tree(self):
        from repro.engine import build_composed

        live = ComposedScenario.sequential(
            ("clean", 30), (LinkDropScenario(0.2, seed=6), None)
        )
        params = live.spec_params()
        spec = self._spec(scenario_params=params)
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        rebuilt = build_composed(**params)
        edges = [(0, 1), (1, 2)]
        live.bind_edges(edges)
        rebuilt.bind_edges(edges)
        for edge in edges:
            for round_index in range(80):
                assert live.transmits(edge, round_index) == rebuilt.transmits(
                    edge, round_index
                )

    def test_unregistered_part_refuses_to_serialise(self):
        class Anonymous(CleanSynchronous):
            name = ""
            is_clean = False

        with pytest.raises(ValueError, match="not a registered"):
            ComposedScenario.overlay(Anonymous()).spec_params()


class _ReprLeaf:
    """Hashable leaf with a fully controlled ``repr`` (vertex-id stand-in).

    Vertex identifiers and per-vertex outputs are arbitrary hashables, so
    their ``repr`` can contain the very separators a canonical container
    encoding uses internally.
    """

    def __init__(self, text: str):
        self.text = text

    def __repr__(self) -> str:
        return self.text

    def __hash__(self) -> int:
        return hash(self.text)

    def __eq__(self, other) -> bool:
        return isinstance(other, _ReprLeaf) and self.text == other.text


class TestCanonicalReprUnambiguous:
    """Regression: the old dict/set encoding joined entry strings with
    bare ``:`` / ``,`` separators, so leaves whose reprs contain those
    characters collided — two different outputs, one digest.  The fixed
    encoding length-prefixes every element, making boundaries explicit."""

    def test_dict_key_value_boundary_collision(self):
        from repro.experiments.session import _canonical_repr

        # Old encoding: both rendered the entry string "a:b:c".
        a = {_ReprLeaf("a"): _ReprLeaf("b:c")}
        b = {_ReprLeaf("a:b"): _ReprLeaf("c")}
        assert _canonical_repr(a) != _canonical_repr(b)

    def test_set_element_boundary_collision(self):
        from repro.experiments.session import _canonical_repr

        # Old encoding: both sorted-joined to "a,b,c".
        a = {_ReprLeaf("a"), _ReprLeaf("b,c")}
        b = {_ReprLeaf("a,b"), _ReprLeaf("c")}
        assert _canonical_repr(a) != _canonical_repr(b)

    def test_multi_entry_dict_boundary_collision(self):
        from repro.experiments.session import _canonical_repr

        # Old encoding: both sorted-joined to "k:v,x,y:z".
        a = {_ReprLeaf("k"): _ReprLeaf("v,x"), _ReprLeaf("y"): _ReprLeaf("z")}
        b = {_ReprLeaf("k"): _ReprLeaf("v"), _ReprLeaf("x,y"): _ReprLeaf("z")}
        assert _canonical_repr(a) != _canonical_repr(b)

    def test_output_digests_distinguish_colliding_containers(self):
        from repro.experiments.session import _digest_outputs

        a = _digest_outputs({0: {_ReprLeaf("a"): _ReprLeaf("b:c")}})
        b = _digest_outputs({0: {_ReprLeaf("a:b"): _ReprLeaf("c")}})
        assert a != b

    def test_plain_containers_still_digest_deterministically(self):
        from repro.experiments.session import _canonical_repr

        assert _canonical_repr({"b": 2, "a": 1}) == _canonical_repr(
            {"a": 1, "b": 2}
        )
        assert _canonical_repr({3, 1, 2}) == _canonical_repr({1, 2, 3})
        assert _canonical_repr({"a": 1}) != _canonical_repr({"a": 2})


class TestTracerForwarding:
    """Regression: ``Session.execute`` must hand tracer-aware backends the
    *resolved* tracer on every call — the null tracer when tracing is off —
    so a custom backend sees one call shape; legacy backends that predate
    the keyword are never passed it."""

    def _graph(self):
        return nx.path_graph(4)

    def _factory(self):
        from repro.baselines.naive import FloodMinimum

        return FloodMinimum

    def test_untraced_session_passes_null_tracer(self):
        from repro.congest.metrics import CongestMetrics
        from repro.congest.network import SynchronousRun
        from repro.engine.backend import Backend
        from repro.obs import NullTracer

        seen = {}

        class TracerProbe(Backend):
            name = "tracer-probe"

            def run(self, graph, factory, *, max_rounds=10_000,
                    phase="simulated", metrics=None, scenario=None,
                    tracer=None):
                seen["tracer"] = tracer
                return SynchronousRun(
                    rounds=1, metrics=CongestMetrics(), outputs={},
                    halted=True,
                )

        Session().execute(self._graph(), self._factory(),
                          backend=TracerProbe())
        assert isinstance(seen["tracer"], NullTracer)

    def test_traced_session_passes_its_tracer(self):
        from repro.congest.metrics import CongestMetrics
        from repro.congest.network import SynchronousRun
        from repro.engine.backend import Backend
        from repro.obs import RecordingTracer

        seen = {}

        class TracerProbe(Backend):
            name = "tracer-probe"

            def run(self, graph, factory, *, max_rounds=10_000,
                    phase="simulated", metrics=None, scenario=None,
                    tracer=None):
                seen["tracer"] = tracer
                return SynchronousRun(
                    rounds=1, metrics=CongestMetrics(), outputs={},
                    halted=True,
                )

        recording = RecordingTracer()
        Session(tracer=recording).execute(
            self._graph(), self._factory(), backend=TracerProbe()
        )
        assert seen["tracer"] is recording

    def test_legacy_backend_without_tracer_keyword_still_runs(self):
        from repro.congest.metrics import CongestMetrics
        from repro.congest.network import SynchronousRun
        from repro.engine.backend import Backend
        from repro.obs import RecordingTracer

        seen = {}

        class Legacy(Backend):
            name = "legacy-probe"

            def run(self, graph, factory, *, max_rounds=10_000,
                    phase="simulated", metrics=None, scenario=None):
                seen["called"] = True
                return SynchronousRun(
                    rounds=1, metrics=CongestMetrics(), outputs={},
                    halted=True,
                )

        # Even a *traced* session must not explode on a legacy backend:
        # it simply runs untraced.
        Session(tracer=RecordingTracer()).execute(
            self._graph(), self._factory(), backend=Legacy()
        )
        assert seen["called"]
