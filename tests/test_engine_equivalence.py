"""Equivalence suite: every backend must agree with the reference simulator.

For a matrix of per-vertex algorithms x seeded workload graphs x delivery
scenarios, the vectorized and sharded backends must reproduce the reference
backend's per-vertex outputs, combined output, round count, and
message/word totals exactly.  This is the contract that lets large
experiments run on the fast backends without re-validating semantics.
"""

import networkx as nx
import pytest

from common import engine_workload_graphs
from repro.baselines.naive import FloodMinimum, NeighborhoodExchangeTriangles
from repro.congest.vertex import VertexAlgorithm
from repro.engine import (
    AdversarialDelayScenario,
    LinkDropScenario,
    ShardedBackend,
    run_algorithm,
)
from repro.graphs import erdos_renyi
from repro.graphs.cliques import enumerate_cliques
from repro.listing.validation import validate_on_engine

FAST_BACKENDS = ["vectorized", "sharded"]

# Flooding moved into the library proper (it now has a vector twin); the
# equivalence matrix keeps exercising the same semantics via the import.
FloodMin = FloodMinimum


class BlobGossip(VertexAlgorithm):
    """Multi-word blobs both ways on every edge: stresses fragmentation."""

    def __init__(self, vertex, neighbors, n):
        super().__init__(vertex, neighbors, n)
        self._received = {}

    def on_round(self, round_index, inbox):
        for message in inbox:
            self._received[message.sender] = message.payload
        if round_index == 0:
            blob = tuple(range(12)) + (self.vertex,)
            return self.send_to_all_neighbors("blob", blob)
        if len(self._received) == len(self.neighbors):
            self.output = frozenset(self._received)
            self.halt()
        return []


class StaggeredEcho(VertexAlgorithm):
    """Vertices keep the edge queues busy at staggered times.

    Sends a vertex-dependent-size payload in a vertex-dependent round, so
    different edges are busy in different, overlapping windows — the case
    where per-edge FIFO order matters most.
    """

    def on_round(self, round_index, inbox):
        my_round = 1 + self.vertex % 3
        if round_index == my_round:
            size = 2 + self.vertex % 5
            return self.send_to_all_neighbors("echo", tuple(range(size)))
        if round_index > 30:
            self.output = round_index
            self.halt()
        return []


ALGORITHMS = [FloodMin, BlobGossip, StaggeredEcho, NeighborhoodExchangeTriangles]


def workload_graphs():
    return [
        pytest.param(name, graph, id=name)
        for name, graph in engine_workload_graphs()
    ]


def run_signature(run):
    """The facts all backends must agree on."""
    return {
        "rounds": run.rounds,
        "messages": run.metrics.messages,
        "words": run.metrics.words,
        "halted": run.halted,
        "outputs": run.outputs,
        "combined": run.combined_output(),
        "phase_rounds": dict(run.metrics.phase_rounds),
    }


@pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.__name__)
@pytest.mark.parametrize("graph_name,graph", workload_graphs())
def test_fast_backends_match_reference(algorithm, graph_name, graph):
    reference = run_signature(
        run_algorithm(graph, algorithm, backend="reference", max_rounds=5000)
    )
    for backend in FAST_BACKENDS:
        candidate = run_signature(
            run_algorithm(graph, algorithm, backend=backend, max_rounds=5000)
        )
        assert candidate == reference, f"{backend} diverged on {graph_name}"


@pytest.mark.parametrize(
    "scenario",
    [
        LinkDropScenario(drop_probability=0.15, seed=21),
        AdversarialDelayScenario(stall_period=4, seed=2),
    ],
    ids=["link-drop", "adversarial-delay"],
)
def test_fast_backends_match_reference_under_faults(scenario):
    graph = erdos_renyi(30, 8.0, seed=9)
    for algorithm in [FloodMin, BlobGossip]:
        reference = run_signature(
            run_algorithm(
                graph, algorithm, backend="reference", scenario=scenario,
                max_rounds=5000,
            )
        )
        for backend in FAST_BACKENDS:
            candidate = run_signature(
                run_algorithm(
                    graph, algorithm, backend=backend, scenario=scenario,
                    max_rounds=5000,
                )
            )
            assert candidate == reference, f"{backend} diverged under {scenario.describe()}"


@pytest.mark.parametrize("backend", ["reference", "vectorized", "sharded"])
def test_triangle_listing_is_correct_on_every_backend(backend, tiny_triangle_graph):
    report = validate_on_engine(
        tiny_triangle_graph, NeighborhoodExchangeTriangles, p=3, backend=backend
    )
    assert report.correct
    assert report.listed == len(enumerate_cliques(tiny_triangle_graph, 3))


def test_sharded_worker_counts_are_equivalent():
    graph = erdos_renyi(24, 6.0, seed=4)
    reference = run_signature(
        run_algorithm(graph, BlobGossip, backend="reference", max_rounds=2000)
    )
    for workers in [1, 2, 3, 5]:
        backend = ShardedBackend(num_workers=workers)
        candidate = run_signature(
            run_algorithm(graph, BlobGossip, backend=backend, max_rounds=2000)
        )
        assert candidate == reference, f"num_workers={workers} diverged"


def test_self_loops_agree_with_reference():
    """Regression: a self-loop is one directed queue, not two edge ids."""
    graph = nx.path_graph(4)
    graph.add_edge(0, 0)
    graph.add_edge(2, 2)
    reference = run_signature(
        run_algorithm(graph, BlobGossip, backend="reference", max_rounds=2000)
    )
    for backend in FAST_BACKENDS:
        candidate = run_signature(
            run_algorithm(graph, BlobGossip, backend=backend, max_rounds=2000)
        )
        assert candidate == reference, f"{backend} diverged on self-loops"


def test_constructor_halted_vertices_agree_with_reference():
    """Regression: vertices halted at construction must not cost a round."""

    class BornDone(VertexAlgorithm):
        def __init__(self, vertex, neighbors, n):
            super().__init__(vertex, neighbors, n)
            self.output = vertex
            self.halt()

        def on_round(self, round_index, inbox):
            return []

    graph = nx.path_graph(6)
    reference = run_signature(
        run_algorithm(graph, BornDone, backend="reference", max_rounds=100)
    )
    assert reference["rounds"] == 0
    for backend in FAST_BACKENDS:
        candidate = run_signature(
            run_algorithm(graph, BornDone, backend=backend, max_rounds=100)
        )
        assert candidate == reference, f"{backend} diverged on halted factories"


def test_truncated_runs_agree_on_partial_accounting():
    """Hitting max_rounds mid-transfer must leave identical metrics."""
    graph = erdos_renyi(20, 8.0, seed=6)
    for cap in [2, 5, 9]:
        reference = run_signature(
            run_algorithm(graph, BlobGossip, backend="reference", max_rounds=cap)
        )
        assert not reference["halted"]
        for backend in FAST_BACKENDS:
            candidate = run_signature(
                run_algorithm(graph, BlobGossip, backend=backend, max_rounds=cap)
            )
            assert candidate == reference, f"{backend} diverged at cap {cap}"
