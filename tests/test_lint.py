"""Tests of the ``repro.lint`` static analyzer.

Every bad fixture is modeled on a real historical bug (or the class of
bug a rule exists to prevent): the PR 7 ``_canonical_repr`` collision
and PR 5 window-cursor bug for REP002, the ``engine/sharded.py``
worker-loop ``except Exception`` for REP004, the E16 tracer-overhead
budget for REP006.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import RULES, Baseline, lint_paths, lint_source
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent

# A relpath inside the engine so path-scoped rules (REP002) apply.
ENGINE_PATH = "src/repro/engine/_fixture.py"


def findings_for(source, rule=None, relpath=ENGINE_PATH):
    found = lint_source(textwrap.dedent(source), relpath=relpath)
    if rule is None:
        return found
    return [f for f in found if f.rule == rule]


def rules_hit(source, relpath=ENGINE_PATH):
    return {f.rule for f in lint_source(textwrap.dedent(source), relpath=relpath)}


class TestRegistry:
    def test_all_shipped_rules_registered(self):
        assert {
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
            "REP007", "REP008",
        } <= set(RULES)

    def test_rules_have_severity_and_description(self):
        for rule in RULES.values():
            assert rule.severity in ("error", "warning")
            assert rule.description


class TestRep001DigestPurity:
    def test_bad_wall_clock_into_hash(self):
        # A timestamp hashed into a content digest would differ on every
        # run — the digest contract ResultSet relies on would be gone.
        bad = """
        import hashlib, time

        def digest_row(row):
            stamp = time.time()
            return hashlib.sha256(f"{row}:{stamp}".encode()).hexdigest()
        """
        assert findings_for(bad, "REP001")

    def test_bad_wall_clock_into_digested_runresult_field(self):
        bad = """
        import time

        def run():
            start = time.perf_counter()
            elapsed = time.perf_counter() - start
            return RunResult(rounds=elapsed, seconds=(elapsed,))
        """
        found = findings_for(bad, "REP001")
        assert len(found) == 1  # rounds flagged; seconds is exempt

    def test_good_seconds_and_timings_are_exempt(self):
        good = """
        import time

        def run():
            start = time.perf_counter()
            seconds = []
            seconds.append(time.perf_counter() - start)
            return RunResult(rounds=5, seconds=tuple(seconds), timings={})
        """
        assert not findings_for(good, "REP001")

    def test_good_untainted_hash(self):
        good = """
        import hashlib

        def digest_row(row):
            return hashlib.sha256(repr(row).encode()).hexdigest()
        """
        assert not findings_for(good, "REP001")


class TestRep002DeterministicIteration:
    def test_bad_direct_set_iteration(self):
        # The PR 5 window-cursor bug class: hash-order iteration feeding
        # message scheduling.
        bad = """
        def schedule(pending):
            queue = set(pending)
            order = []
            for vertex in queue:
                order.append(vertex)
            return order
        """
        assert findings_for(bad, "REP002")

    def test_bad_raw_dict_items_in_digest_helper(self):
        # The PR 7 _canonical_repr collision lived in exactly this shape.
        bad = """
        def _canonical_repr(value):
            return tuple((k, v) for k, v in value.items())
        """
        assert findings_for(bad, "REP002")

    def test_bad_order_carrying_conversion(self):
        bad = """
        def neighbours(graph, v):
            seen = {u for u in graph[v]}
            return list(seen)
        """
        assert findings_for(bad, "REP002")

    def test_good_sorted_iteration(self):
        good = """
        def schedule(pending):
            queue = set(pending)
            order = []
            for vertex in sorted(queue):
                order.append(vertex)
            return order
        """
        assert not findings_for(good, "REP002")

    def test_good_order_insensitive_consumers(self):
        good = """
        def summarise(pending):
            queue = set(pending)
            return sum(1 for v in queue), max(queue), len(queue)
        """
        assert not findings_for(good, "REP002")

    def test_good_sorted_dict_items_in_digest_helper(self):
        good = """
        def _canonical_repr(value):
            return tuple(sorted((repr(k), repr(v)) for k, v in value.items()))
        """
        assert not findings_for(good, "REP002")

    def test_rule_is_scoped_to_digest_feeding_packages(self):
        bad = """
        def walk(nodes):
            group = set(nodes)
            return [n for n in group]
        """
        # Same code outside engine/experiments/congest/service: exempt.
        assert not findings_for(bad, "REP002", relpath="src/repro/analysis/viz.py")
        assert findings_for(bad, "REP002", relpath="src/repro/service/extra.py")


class TestRep003SeededRandomness:
    def test_bad_module_level_draw(self):
        bad = """
        import random

        def jitter():
            return random.random()
        """
        assert findings_for(bad, "REP003")

    def test_bad_unseeded_constructors_and_global_seed(self):
        bad = """
        import random
        import numpy as np

        rng_a = random.Random()
        rng_b = np.random.default_rng()
        random.seed(42)
        """
        assert len(findings_for(bad, "REP003")) == 3

    def test_good_seeded_rngs(self):
        good = """
        import random
        import numpy as np

        def make(seed):
            rng = random.Random(seed)
            vec = np.random.default_rng(seed)
            return rng.random(), vec.random()
        """
        assert not findings_for(good, "REP003")


class TestRep004ForkWorkerSafety:
    def test_bad_broad_except_swallows_control_flow(self):
        # Modeled on the shipped engine/sharded.py:209 worker loop.
        bad = """
        def _shard_worker(conn):
            try:
                step()
            except Exception as exc:
                conn.send(("error", exc))
        """
        assert findings_for(bad, "REP004")

    def test_bad_bare_except(self):
        bad = """
        def drain(conn):
            try:
                conn.recv()
            except:
                pass
        """
        assert findings_for(bad, "REP004")

    def test_good_control_flow_reraised_first(self):
        good = """
        def _shard_worker(conn):
            try:
                step()
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                conn.send(("error", exc))
        """
        assert not findings_for(good, "REP004")

    def test_good_pragma_justification(self):
        good = """
        def teardown(block):
            try:
                block.close()
            except Exception:  # pragma: no cover - teardown best-effort
                pass
        """
        assert not findings_for(good, "REP004")

    def test_good_handler_that_reraises(self):
        good = """
        def run(conn):
            try:
                step()
            except Exception:
                log("failed")
                raise
        """
        assert not findings_for(good, "REP004")

    def test_bad_worker_target_captures_module_lock(self):
        bad = """
        import multiprocessing
        import threading

        _LOCK = threading.Lock()

        def _worker(conn):
            with _LOCK:
                conn.recv()

        def start(ctx):
            return multiprocessing.Process(target=_worker)
        """
        assert findings_for(bad, "REP004")

    def test_good_worker_gets_state_explicitly(self):
        good = """
        import multiprocessing

        def _worker(conn, lock):
            with lock:
                conn.recv()

        def start(ctx, lock):
            return multiprocessing.Process(target=_worker, args=(None, lock))
        """
        assert not findings_for(good, "REP004")


class TestRep005RegistryHygiene:
    def test_bad_parametrised_scenario_without_spec_params(self):
        bad = """
        @register_scenario("drop")
        class Drop:
            def __init__(self, probability):
                self.probability = probability
        """
        assert findings_for(bad, "REP005")

    def test_bad_has_kernel_without_transmit_mask(self):
        bad = """
        @register_scenario("burst")
        class Burst:
            has_kernel = True

            def transmits(self, r, e):
                return True
        """
        assert findings_for(bad, "REP005")

    def test_good_complete_scenario(self):
        good = """
        @register_scenario("drop")
        class Drop:
            has_kernel = True

            def __init__(self, probability):
                self.probability = probability

            def spec_params(self):
                return {"probability": self.probability}

            def transmit_mask(self, r, edges):
                return edges
        """
        assert not findings_for(good, "REP005")

    def test_good_parameterless_scenario_needs_no_spec_params(self):
        good = """
        @register_scenario("clean")
        class Clean:
            def transmits(self, r, e):
                return True
        """
        assert not findings_for(good, "REP005")

    def test_registered_functions_are_skipped(self):
        good = """
        @register_scenario("composed")
        def build_composed(*layers):
            return Composed(layers)
        """
        assert not findings_for(good, "REP005")


class TestRep006TracerHotPath:
    def test_bad_unguarded_event_in_round_loop(self):
        # E16 pins null-tracer overhead <= 3%; this shape breaks it.
        bad = """
        def run(tracer, rounds):
            for r in range(rounds):
                tracer.round_begin(r)
                step(r)
        """
        assert findings_for(bad, "REP006")

    def test_good_enabled_guard(self):
        good = """
        def run(tracer, rounds):
            for r in range(rounds):
                if tracer.enabled:
                    tracer.round_begin(r)
                step(r)
        """
        assert not findings_for(good, "REP006")

    def test_good_hoisted_guard_name(self):
        good = """
        def run(tracer, rounds):
            traced = tracer.enabled
            for r in range(rounds):
                if traced and r % 2 == 0:
                    tracer.round_end(r, delivered=1)
                step(r)
        """
        assert not findings_for(good, "REP006")

    def test_good_guard_outside_loop(self):
        good = """
        def run(tracer, rounds):
            if tracer.enabled:
                for r in range(rounds):
                    tracer.round_begin(r)
        """
        assert not findings_for(good, "REP006")

    def test_good_call_outside_loop_is_fine(self):
        good = """
        def run(tracer):
            tracer.cell_begin("cell")
        """
        assert not findings_for(good, "REP006")

    def test_obs_package_is_exempt(self):
        bad = """
        def replay(tracer, events):
            for event in events:
                tracer.event(event)
        """
        assert not findings_for(bad, "REP006", relpath="src/repro/obs/replay.py")


class TestSuppression:
    def test_blanket_noqa(self):
        src = """
        import random

        x = random.random()  # noqa
        """
        assert not findings_for(src, "REP003")

    def test_scoped_noqa_matches_rule(self):
        src = """
        import random

        x = random.random()  # noqa: REP003
        """
        assert not findings_for(src, "REP003")

    def test_scoped_noqa_other_rule_does_not_suppress(self):
        src = """
        import random

        x = random.random()  # noqa: REP001
        """
        assert findings_for(src, "REP003")

    def test_syntax_error_becomes_parse_finding(self):
        found = lint_source("def broken(:\n", relpath=ENGINE_PATH)
        assert [f.rule for f in found] == ["REP000"]


class TestBaseline:
    BAD = textwrap.dedent(
        """
        import random

        def jitter():
            return random.random()
        """
    )

    def test_round_trip_suppresses_grandfathered_findings(self, tmp_path):
        found = findings_for(self.BAD)
        assert found
        path = tmp_path / "baseline.json"
        Baseline.from_findings(found).save(path)
        loaded = Baseline.load(path)
        visible, suppressed, unused = loaded.apply(found)
        assert visible == []
        assert suppressed == len(found)
        assert unused == {}

    def test_new_finding_is_not_suppressed(self, tmp_path):
        old = findings_for(self.BAD)
        baseline = Baseline.from_findings(old)
        grown = self.BAD + "\n\ndef more():\n    return random.randint(0, 7)\n"
        visible, suppressed, _ = baseline.apply(findings_for(grown))
        assert suppressed == len(old)
        assert [f.snippet for f in visible] == ["return random.randint(0, 7)"]

    def test_extra_occurrence_of_grandfathered_pattern_is_visible(self):
        found = findings_for(self.BAD)
        doubled = found + found
        baseline = Baseline.from_findings(found)
        visible, suppressed, _ = baseline.apply(doubled)
        assert suppressed == len(found)
        assert len(visible) == len(found)

    def test_stale_entries_are_reported(self):
        baseline = Baseline({"REP003:gone.py:x = random.random()": 2})
        visible, suppressed, unused = baseline.apply([])
        assert visible == [] and suppressed == 0
        assert unused == {"REP003:gone.py:x = random.random()": 2}

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "absent.json").entries == {}

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(ValueError, match="unsupported baseline version"):
            Baseline.load(path)


class TestCli:
    def _write_bad_module(self, tmp_path):
        module = tmp_path / "src" / "repro" / "engine" / "bad.py"
        module.parent.mkdir(parents=True)
        module.write_text(
            "import random\n\n\ndef jitter():\n    return random.random()\n"
        )
        return module

    def test_clean_module_exits_zero(self, tmp_path, capsys):
        module = tmp_path / "ok.py"
        module.write_text("VALUE = 1\n")
        code = lint_main([str(module), "--root", str(tmp_path), "--no-baseline"])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one_and_json_shape(self, tmp_path, capsys):
        module = self._write_bad_module(tmp_path)
        code = lint_main(
            [str(module), "--root", str(tmp_path), "--no-baseline",
             "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["counts"]["visible"] == 1
        finding = payload["findings"][0]
        assert finding["rule"] == "REP003"
        assert finding["path"] == "src/repro/engine/bad.py"

    def test_write_baseline_then_gate_is_green(self, tmp_path, capsys):
        module = self._write_bad_module(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert (
            lint_main(
                [str(module), "--root", str(tmp_path), "--baseline",
                 str(baseline), "--write-baseline"]
            )
            == 0
        )
        capsys.readouterr()
        code = lint_main(
            [str(module), "--root", str(tmp_path), "--baseline", str(baseline)]
        )
        assert code == 0
        assert "1 suppressed by baseline" in capsys.readouterr().out

    def test_output_report_is_written(self, tmp_path, capsys):
        module = self._write_bad_module(tmp_path)
        report = tmp_path / "report.json"
        lint_main(
            [str(module), "--root", str(tmp_path), "--no-baseline",
             "--output", str(report)]
        )
        capsys.readouterr()
        payload = json.loads(report.read_text())
        assert payload["counts"]["visible"] == 1

    def test_nonexistent_target_is_a_usage_error(self, tmp_path, capsys):
        # A typo'd path must not produce a green "0 findings" gate.
        with pytest.raises(SystemExit) as excinfo:
            lint_main([str(tmp_path / "nope"), "--no-baseline"])
        assert excinfo.value.code == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP006"):
            assert rule_id in out

    def test_rule_selection(self, tmp_path, capsys):
        module = self._write_bad_module(tmp_path)
        code = lint_main(
            [str(module), "--root", str(tmp_path), "--no-baseline",
             "--rules", "REP004"]
        )
        assert code == 0
        capsys.readouterr()


class TestRep007DigestFieldDrift:
    """A RunResult field must be digested (a to_row() key) or excluded."""

    SESSION_PATH = "src/repro/experiments/_fixture.py"

    GOOD = """
    _ROW_EXCLUDED = frozenset({"outputs"})

    class RunResult:
        rounds: int
        outputs: dict | None = None

        def to_row(self):
            return {"rounds": self.rounds}
    """

    def rep007(self, source):
        return findings_for(source, rule="REP007", relpath=self.SESSION_PATH)

    def test_clean_split_between_row_and_exclusions(self):
        assert self.rep007(self.GOOD) == []

    def test_field_missing_from_both_is_drift(self):
        # The real customer: round_stretch added to the dataclass but
        # forgotten in to_row() would silently drift out of every digest.
        bad = self.GOOD.replace(
            "outputs: dict | None = None",
            "outputs: dict | None = None\n        round_stretch: float | None = None",
        )
        found = self.rep007(bad)
        assert len(found) == 1 and "round_stretch" in found[0].message

    def test_field_cannot_be_both_digested_and_excluded(self):
        bad = self.GOOD.replace('{"outputs"}', '{"outputs", "rounds"}')
        found = self.rep007(bad)
        assert len(found) == 1 and "never both" in found[0].message

    def test_stale_exclusion_is_reported(self):
        bad = self.GOOD.replace('{"outputs"}', '{"outputs", "ghost"}')
        found = self.rep007(bad)
        assert len(found) == 1 and "ghost" in found[0].message

    def test_missing_to_row_is_reported(self):
        bad = """
        class RunResult:
            rounds: int
        """
        found = self.rep007(bad)
        assert len(found) == 1 and "to_row" in found[0].message

    def test_digest_deleting_a_nonexistent_row_key_is_reported(self):
        bad = self.GOOD + """
    class ResultSet:
        def digest(self):
            row = {}
            del row["seconds"]
            return row
    """
        found = self.rep007(bad)
        assert len(found) == 1 and "seconds" in found[0].message

    def test_digest_deleting_a_real_row_key_is_fine(self):
        good = self.GOOD + """
    class ResultSet:
        def digest(self):
            row = {}
            del row["rounds"]
            return row
    """
        assert self.rep007(good) == []

    def test_modules_without_run_result_are_ignored(self):
        assert self.rep007("x = 1") == []

    def test_private_fields_are_ignored(self):
        good = self.GOOD.replace(
            "outputs: dict | None = None",
            "outputs: dict | None = None\n        _scratch: int = 0",
        )
        assert self.rep007(good) == []


class TestRep008AdaptiveScenarioContract:
    """observe_round() overriders must be flagged adaptive and replayable."""

    SCENARIO_PATH = "src/repro/engine/_fixture.py"

    GOOD = """
    class AdaptiveCrash:
        is_adaptive = True

        def __init__(self, max_faulty=1):
            self.max_faulty = max_faulty
            self._traffic = {}

        def observe_round(self, stats):
            self._traffic = stats.words_by_vertex

        def spec_params(self):
            return {"max_faulty": self.max_faulty}
    """

    def rep008(self, source):
        return findings_for(source, rule="REP008", relpath=self.SCENARIO_PATH)

    def test_clean_adaptive_scenario(self):
        assert self.rep008(self.GOOD) == []

    def test_missing_is_adaptive_flag(self):
        # The silent failure mode the rule exists for: without the flag,
        # backends never feed traffic stats and the override is dead code.
        bad = self.GOOD.replace("        is_adaptive = True\n\n", "")
        found = self.rep008(bad)
        assert len(found) == 1 and "is_adaptive" in found[0].message

    def test_self_assigned_flag_counts(self):
        good = self.GOOD.replace(
            "        is_adaptive = True\n\n", ""
        ).replace(
            "self.max_faulty = max_faulty",
            "self.max_faulty = max_faulty\n            self.is_adaptive = True",
        )
        assert self.rep008(good) == []

    def test_parameterised_scenario_without_spec_params(self):
        bad = self.GOOD.replace(
            "\n        def spec_params(self):\n"
            "            return {\"max_faulty\": self.max_faulty}\n", "\n"
        )
        found = self.rep008(bad)
        assert len(found) == 1 and "spec_params" in found[0].message

    def test_spec_params_reading_observed_state(self):
        # Serialising mid-run adversary state would make a JSON replay
        # start from a different decision history than the original run.
        bad = self.GOOD.replace(
            'return {"max_faulty": self.max_faulty}',
            'return {"max_faulty": self.max_faulty, "t": self._traffic}',
        )
        found = self.rep008(bad)
        assert len(found) == 1 and "_traffic" in found[0].message

    def test_noop_base_class_hook_is_ignored(self):
        good = """
        class DeliveryScenario:
            def observe_round(self, stats):
                \"\"\"Default hook: oblivious scenarios ignore traffic.\"\"\"
        """
        assert self.rep008(good) == []


class TestRepoIsClean:
    def test_src_repro_lints_clean_against_committed_baseline(self):
        """The CI gate in test form: zero non-baselined findings."""
        report = lint_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        visible, _, _ = baseline.apply(report.findings)
        assert visible == [], "\n".join(f.format() for f in visible)
        assert report.files > 60

    def test_module_entry_point_runs(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src/repro", "--format", "json"],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["ok"] is True
