"""Distributed listing correctness: engine-executed output equals ground truth.

The property under test is the headline guarantee of Theorems 32/36, now on
the *execution* path: running the recursive listing pipeline as real
per-vertex messages through the engine — on any backend and under any
delivery scenario — returns exactly the ``K_p`` set that centralized
enumeration (``nx.enumerate_all_cliques``) produces.
"""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import AdversarialDelayScenario, LinkDropScenario
from repro.graphs import erdos_renyi, planted_cliques
from repro.listing import (
    list_cliques_distributed,
    list_triangles_distributed,
    validate_distributed_listing,
)

BACKENDS = ["reference", "vectorized", "sharded"]

SCENARIOS = [
    pytest.param(None, id="clean"),
    pytest.param(LinkDropScenario(drop_probability=0.15, seed=21), id="link-drop"),
    pytest.param(AdversarialDelayScenario(stall_period=4, seed=2), id="adversarial-delay"),
]


def nx_triangle_truth(graph: nx.Graph) -> set:
    """Triangle ground truth via networkx's clique enumeration."""
    return {
        tuple(sorted(clique))
        for clique in nx.enumerate_all_cliques(graph)
        if len(clique) == 3
    }


def nx_clique_truth(graph: nx.Graph, p: int) -> set:
    return {
        tuple(sorted(clique))
        for clique in nx.enumerate_all_cliques(graph)
        if len(clique) == p
    }


# ---------------------------------------------------------------------------
# Property-based: random graphs, random backend, random scenario
# ---------------------------------------------------------------------------


@st.composite
def small_graphs(draw, max_vertices=12):
    n = draw(st.integers(min_value=3, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    mask = draw(st.lists(st.booleans(), min_size=len(possible), max_size=len(possible)))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edge for edge, keep in zip(possible, mask) if keep)
    return graph


@given(
    small_graphs(),
    st.sampled_from(BACKENDS),
    st.sampled_from(["clean", "link-drop", "adversarial-delay"]),
    st.integers(min_value=0, max_value=7),
)
@settings(max_examples=25, deadline=None)
def test_distributed_triangles_match_nx_ground_truth(graph, backend, scenario_name, seed):
    if scenario_name == "link-drop":
        scenario = LinkDropScenario(drop_probability=0.2, seed=seed)
    elif scenario_name == "adversarial-delay":
        scenario = AdversarialDelayScenario(stall_period=3 + seed % 3, seed=seed)
    else:
        scenario = None
    result = list_triangles_distributed(graph, backend=backend, scenario=scenario)
    assert result.cliques == nx_triangle_truth(graph)


@given(small_graphs(max_vertices=10), st.integers(min_value=4, max_value=5))
@settings(max_examples=15, deadline=None)
def test_distributed_kp_matches_nx_ground_truth(graph, p):
    result = list_cliques_distributed(graph, p, backend="vectorized")
    assert result.cliques == nx_clique_truth(graph, p)


# ---------------------------------------------------------------------------
# Seeded matrix: every backend x every scenario on fixed workload graphs
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_distributed_listing_exact_on_every_backend_and_scenario(backend, scenario):
    graph = planted_cliques(40, 4, 4, background_avg_degree=3.0, seed=5)
    result = list_triangles_distributed(graph, backend=backend, scenario=scenario)
    assert result.cliques == nx_triangle_truth(graph)
    report = validate_distributed_listing(graph, result)
    assert report.ok, report.summary()


def test_backends_agree_on_distributed_execution_signature():
    """All backends must measure identical rounds/messages/words per execution."""
    graph = erdos_renyi(36, 8.0, seed=9)
    signatures = {}
    for backend in BACKENDS:
        result = list_triangles_distributed(graph, backend=backend)
        signatures[backend] = [
            (e.level, e.cluster_index, e.rounds, e.messages, e.words, e.halted)
            for e in result.executions
        ]
        assert result.cliques == nx_triangle_truth(graph)
    assert signatures["vectorized"] == signatures["reference"]
    assert signatures["sharded"] == signatures["reference"]


def test_distributed_listing_survives_faults_with_bounded_stretch():
    """Faulty delivery slows rounds but never changes the listed set."""
    graph = planted_cliques(50, 4, 5, background_avg_degree=3.0, seed=13)
    truth = nx_triangle_truth(graph)
    clean = list_triangles_distributed(graph, backend="vectorized")
    delayed = list_triangles_distributed(
        graph, backend="vectorized",
        scenario=AdversarialDelayScenario(stall_period=4, seed=3),
    )
    assert clean.cliques == truth
    assert delayed.cliques == truth
    # The adversary stalls each edge once per period: bounded stretch, and
    # it can only slow the execution down.
    assert delayed.measured_rounds >= clean.measured_rounds
    assert delayed.measured_rounds <= 4 * clean.measured_rounds + 16


def test_distributed_kp_on_fixed_graph_across_backends():
    graph = planted_cliques(40, 5, 4, background_avg_degree=3.0, seed=11)
    truth = nx_clique_truth(graph, 4)
    for backend in BACKENDS:
        result = list_cliques_distributed(graph, 4, backend=backend)
        assert result.cliques == truth, backend
