"""Unit tests for the shared round/message counters."""

import pytest

from repro.congest.metrics import CongestMetrics


class TestCongestMetrics:
    def test_add_rounds_accumulates_and_attributes(self):
        metrics = CongestMetrics()
        metrics.add_rounds(5, phase="a")
        metrics.add_rounds(3, phase="b")
        metrics.add_rounds(2, phase="a")
        assert metrics.rounds == 10
        assert metrics.phase_rounds["a"] == 7
        assert metrics.phase_rounds["b"] == 3

    def test_add_messages_tracks_words_separately(self):
        metrics = CongestMetrics()
        metrics.add_messages(4, phase="x", words=12)
        assert metrics.messages == 4
        assert metrics.words == 12

    def test_words_default_to_messages(self):
        metrics = CongestMetrics()
        metrics.add_messages(4)
        assert metrics.words == 4

    def test_add_dropped_accumulates(self):
        metrics = CongestMetrics()
        metrics.add_dropped(3, phase="x")
        metrics.add_dropped(2)
        assert metrics.dropped == 5

    def test_negative_values_rejected(self):
        metrics = CongestMetrics()
        with pytest.raises(ValueError):
            metrics.add_rounds(-1)
        with pytest.raises(ValueError):
            metrics.add_messages(-2)
        with pytest.raises(ValueError):
            metrics.add_dropped(-3)

    def test_merge(self):
        left = CongestMetrics()
        left.add_rounds(2, phase="p")
        right = CongestMetrics()
        right.add_rounds(3, phase="p")
        right.add_messages(7, phase="q")
        right.add_dropped(4)
        left.merge(right)
        assert left.rounds == 5
        assert left.phase_rounds["p"] == 5
        assert left.messages == 7
        assert left.dropped == 4

    def test_snapshot_and_reset(self):
        metrics = CongestMetrics()
        metrics.add_rounds(1)
        metrics.add_messages(2)
        metrics.add_dropped(1)
        assert metrics.snapshot() == {
            "rounds": 1, "messages": 2, "words": 2, "dropped": 1,
        }
        metrics.reset()
        assert metrics.snapshot() == {
            "rounds": 0, "messages": 0, "words": 0, "dropped": 0,
        }


class TestPhaseDropped:
    def test_add_dropped_attributes_per_phase(self):
        metrics = CongestMetrics()
        metrics.add_dropped(3, phase="listing")
        metrics.add_dropped(2, phase="flood")
        metrics.add_dropped(1, phase="listing")
        assert metrics.dropped == 6
        assert metrics.phase_dropped["listing"] == 4
        assert metrics.phase_dropped["flood"] == 2

    def test_add_dropped_defaults_to_unattributed(self):
        metrics = CongestMetrics()
        metrics.add_dropped(5)
        assert metrics.phase_dropped["unattributed"] == 5

    def test_merge_folds_phase_dropped(self):
        left = CongestMetrics()
        left.add_dropped(1, phase="p")
        right = CongestMetrics()
        right.add_dropped(2, phase="p")
        right.add_dropped(3, phase="q")
        left.merge(right)
        assert left.dropped == 6
        assert left.phase_dropped["p"] == 3
        assert left.phase_dropped["q"] == 3

    def test_reset_clears_phase_dropped(self):
        metrics = CongestMetrics()
        metrics.add_dropped(4, phase="p")
        metrics.reset()
        assert metrics.dropped == 0
        assert dict(metrics.phase_dropped) == {}
