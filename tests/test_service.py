"""Tests of the experiment service: digests, cache, protocol, server."""

import asyncio
import json
import multiprocessing

import pytest

from repro.experiments import ExperimentSpec, ResultSet, Session
from repro.experiments.session import RunResult, run_cell
from repro.service import (
    CellCache,
    ExperimentServer,
    ExperimentService,
    ProtocolError,
    ServiceClient,
    ServiceError,
    SubmitRequest,
    WorkerPool,
)

_FORK = "fork" in multiprocessing.get_all_start_methods()

SPEC_KWARGS = dict(
    name="svc-unit",
    graph="erdos-renyi",
    graph_params={"n": 24, "avg_degree": 5.0, "seed": 3},
    workload="flood-min",
    backend="reference",
    seeds=(0, 1),
    max_rounds=2_000,
)


def make_spec(**overrides):
    return ExperimentSpec(**{**SPEC_KWARGS, **overrides})


class TestCellDigest:
    def test_digest_is_stable_across_json_round_trip(self):
        spec = make_spec()
        rebuilt = ExperimentSpec.from_json(spec.to_json())
        assert spec.cell_digest(seed=0) == rebuilt.cell_digest(seed=0)

    def test_spec_name_is_excluded(self):
        # Renamed resubmissions of identical work must share cache entries.
        assert make_spec().cell_digest(seed=0) == make_spec(
            name="renamed"
        ).cell_digest(seed=0)

    def test_every_identity_field_changes_the_digest(self):
        base = make_spec().cell_digest(seed=0)
        assert make_spec().cell_digest(seed=1) != base
        assert make_spec(max_rounds=999).cell_digest(seed=0) != base
        assert make_spec(repeats=2).cell_digest(seed=0) != base
        assert (
            make_spec(graph_params={"n": 25, "avg_degree": 5.0, "seed": 3})
            .cell_digest(seed=0) != base
        )
        assert make_spec().cell_digest(backend="vectorized", seed=0) != base
        assert (
            make_spec().cell_digest(
                scenario=("link-drop", {"drop_probability": 0.1}), seed=0
            ) != base
        )

    def test_none_scenario_equals_clean(self):
        spec = make_spec()
        assert spec.cell_digest(scenario=None, seed=0) == spec.cell_digest(
            scenario="clean", seed=0
        )

    def test_live_objects_are_not_digestable(self):
        import networkx as nx

        spec = make_spec(graph=nx.path_graph(4), graph_params={})
        assert spec.cell_digest(seed=0) is None

    def test_scenario_params_distinguish_cells(self):
        spec = make_spec()
        a = spec.cell_digest(
            scenario=("link-drop", {"drop_probability": 0.1}), seed=0
        )
        b = spec.cell_digest(
            scenario=("link-drop", {"drop_probability": 0.2}), seed=0
        )
        assert a != b


def _row(seed=0, **overrides):
    kwargs = dict(
        spec_name="svc-unit",
        workload="flood-min",
        backend="reference",
        scenario="CleanSynchronous",
        scenario_name=None,
        seed=seed,
        n=4,
        edges=3,
        rounds=3,
        messages=12,
        words=12,
        dropped=0,
        halted=True,
        seconds=(0.001,),
        output_digest="d" * 16,
    )
    kwargs.update(overrides)
    return RunResult(**kwargs)


class TestCellCache:
    def test_hit_miss_counters(self):
        cache = CellCache()
        assert cache.get("a" * 16) is None
        cache.put("a" * 16, _row())
        assert cache.get("a" * 16).seed == 0
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert "a" * 16 in cache
        assert len(cache) == 1

    def test_lru_eviction_order(self):
        cache = CellCache(max_entries=2)
        cache.put("k1", _row(seed=1))
        cache.put("k2", _row(seed=2))
        assert cache.get("k1") is not None  # refresh k1; k2 is now LRU
        cache.put("k3", _row(seed=3))
        assert "k2" not in cache
        assert "k1" in cache and "k3" in cache
        assert cache.stats()["evictions"] == 1

    def test_clear(self):
        cache = CellCache()
        cache.put("k", _row())
        cache.clear()
        assert len(cache) == 0

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            CellCache(max_entries=0)
        with pytest.raises(ValueError, match="spill_bytes"):
            CellCache(spill_bytes=-1)


class TestCellCachePersistence:
    """The digest-keyed on-disk store: restart survival + outputs spill."""

    def test_entries_survive_a_restart(self, tmp_path):
        first = CellCache(cache_dir=tmp_path)
        first.put("aa11", _row(seed=4))
        assert (tmp_path / "aa11.pkl").is_file()
        # A fresh cache over the same directory — the restarted server —
        # re-warms lazily on first touch.
        second = CellCache(cache_dir=tmp_path)
        restored = second.get("aa11")
        assert restored is not None and restored.seed == 4
        stats = second.stats()
        assert stats["hits"] == 1 and stats["disk_hits"] == 1
        assert stats["cache_dir"] == str(tmp_path)
        # Now resident: the next get is a pure memory hit.
        second.get("aa11")
        assert second.stats()["disk_hits"] == 1

    def test_contains_consults_the_disk_store(self, tmp_path):
        CellCache(cache_dir=tmp_path).put("bb22", _row())
        restarted = CellCache(cache_dir=tmp_path)
        assert "bb22" in restarted
        assert "cc33" not in restarted

    def test_eviction_only_drops_the_memory_entry(self, tmp_path):
        cache = CellCache(max_entries=1, cache_dir=tmp_path)
        cache.put("k1", _row(seed=1))
        cache.put("k2", _row(seed=2))  # evicts k1 from memory
        assert cache.stats()["evictions"] == 1
        rewarmed = cache.get("k1")
        assert rewarmed is not None and rewarmed.seed == 1
        assert cache.stats()["disk_hits"] == 1

    def test_large_outputs_spill_to_disk(self, tmp_path):
        big = {v: tuple(range(200)) for v in range(200)}
        cache = CellCache(cache_dir=tmp_path, spill_bytes=1024)
        cache.put("dd44", _row(outputs=big))
        assert cache.stats()["spills"] == 1
        # The memory LRU holds an outputs-free stub...
        assert cache._entries["dd44"].outputs is None
        # ...but a get transparently reads the full result back.
        assert cache.get("dd44").outputs == big
        assert cache.stats()["disk_hits"] == 1

    def test_small_outputs_stay_resident(self, tmp_path):
        cache = CellCache(cache_dir=tmp_path, spill_bytes=1 << 20)
        cache.put("ee55", _row(outputs={0: 1}))
        assert cache.stats()["spills"] == 0
        assert cache.get("ee55").outputs == {0: 1}
        assert cache.stats()["disk_hits"] == 0

    def test_no_spill_without_cache_dir(self):
        big = {v: tuple(range(200)) for v in range(200)}
        cache = CellCache(spill_bytes=16)
        cache.put("ff66", _row(outputs=big))
        assert cache.stats()["spills"] == 0
        assert cache.get("ff66").outputs == big

    def test_torn_disk_file_degrades_to_a_miss(self, tmp_path):
        (tmp_path / "ab12.pkl").write_bytes(b"\x80 not a pickle")
        cache = CellCache(cache_dir=tmp_path)
        assert cache.get("ab12") is None
        assert cache.stats()["misses"] == 1
        # The next put overwrites the torn file atomically.
        cache.put("ab12", _row(seed=9))
        assert CellCache(cache_dir=tmp_path).get("ab12").seed == 9

    def test_unsafe_digests_never_touch_the_filesystem(self, tmp_path):
        cache = CellCache(cache_dir=tmp_path)
        cache.put("../escape", _row())
        assert list(tmp_path.iterdir()) == []
        # Still served from memory.
        assert cache.get("../escape") is not None

    def test_clear_leaves_the_persistent_store_intact(self, tmp_path):
        cache = CellCache(cache_dir=tmp_path)
        cache.put("cd34", _row(seed=6))
        cache.clear()
        assert len(cache) == 0
        assert cache.get("cd34").seed == 6  # re-warmed from disk

    def test_warm_session_grid_replays_across_restart(self, tmp_path):
        spec = make_spec()
        cold = Session(
            name="cold", cache=CellCache(cache_dir=tmp_path)
        ).grid(spec, scenarios=[None])
        restarted = CellCache(cache_dir=tmp_path)
        warm = Session(name="warm", cache=restarted).grid(spec, scenarios=[None])
        assert warm.digest() == cold.digest()
        assert restarted.stats()["disk_hits"] == len(cold)
        assert restarted.stats()["misses"] == 0


class TestCellCacheGc:
    """The persistent store's garbage collector: size and age budgets."""

    def _entry_size(self, tmp_path):
        CellCache(cache_dir=tmp_path / "probe").put("aa11", _row())
        return (tmp_path / "probe" / "aa11.pkl").stat().st_size

    def test_startup_gc_prunes_oldest_beyond_byte_budget(self, tmp_path):
        import os

        writer = CellCache(cache_dir=tmp_path)
        for index, digest in enumerate(("old1", "old2", "new3")):
            writer.put(digest, _row(seed=index))
            os.utime(tmp_path / f"{digest}.pkl", (100.0 * (index + 1),) * 2)
        size = (tmp_path / "new3.pkl").stat().st_size
        restarted = CellCache(cache_dir=tmp_path, gc_bytes=size)
        assert restarted.gc_evictions == 2
        assert sorted(p.name for p in tmp_path.glob("*.pkl")) == ["new3.pkl"]
        assert restarted.get("new3") is not None
        assert restarted.get("old1") is None  # pruned -> future re-execute

    def test_startup_gc_prunes_expired_entries(self, tmp_path):
        import os

        writer = CellCache(cache_dir=tmp_path)
        writer.put("stale", _row(seed=1))
        writer.put("fresh", _row(seed=2))
        week_ago = __import__("time").time() - 7 * 86400.0
        os.utime(tmp_path / "stale.pkl", (week_ago, week_ago))
        restarted = CellCache(cache_dir=tmp_path, gc_days=1.0)
        assert restarted.gc_evictions == 1
        assert restarted.get("stale") is None
        assert restarted.get("fresh").seed == 2

    def test_write_through_gc_keeps_the_entry_just_stored(self, tmp_path):
        import os

        size = self._entry_size(tmp_path)
        cache = CellCache(cache_dir=tmp_path, gc_bytes=size)
        cache.put("first", _row(seed=1))
        os.utime(tmp_path / "first.pkl", (100.0, 100.0))
        cache.put("second", _row(seed=2))
        assert cache.gc_evictions >= 1
        assert not (tmp_path / "first.pkl").exists()
        assert (tmp_path / "second.pkl").exists()
        # The memory LRU still serves the pruned digest; only a restarted
        # server pays the re-execution.
        assert cache.get("first") is not None
        assert CellCache(cache_dir=tmp_path).get("first") is None

    def test_gc_evictions_surface_in_stats(self, tmp_path):
        import os

        writer = CellCache(cache_dir=tmp_path)
        writer.put("gone", _row())
        os.utime(tmp_path / "gone.pkl", (100.0, 100.0))
        restarted = CellCache(cache_dir=tmp_path, gc_days=1.0)
        assert restarted.stats()["gc_evictions"] == 1

    def test_stale_schema_pickle_is_a_miss(self, tmp_path):
        # A pickle persisted before a default-less RunResult field existed
        # must not resurface and crash to_row(); it re-executes.  (Fields
        # added *with* a default — reseats — stay readable through the
        # class default, so old stores keep their value across upgrades.)
        import pickle

        entry = _row(seed=5)
        del entry.__dict__["rounds"]
        (tmp_path / "ag3d.pkl").write_bytes(pickle.dumps(entry, protocol=4))
        cache = CellCache(cache_dir=tmp_path)
        assert cache.get("ag3d") is None
        assert cache.stats()["misses"] == 1
        cache.put("ag3d", _row(seed=6))
        assert CellCache(cache_dir=tmp_path).get("ag3d").seed == 6

    def test_gc_parameters_are_validated(self):
        with pytest.raises(ValueError, match="gc_bytes"):
            CellCache(gc_bytes=-1)
        with pytest.raises(ValueError, match="gc_days"):
            CellCache(gc_days=0)


class TestClientRetry:
    """Bounded reconnect with deterministic backoff in ServiceClient."""

    def test_refused_connection_retries_then_raises(self, monkeypatch):
        import repro.service.client as client_mod

        sleeps = []
        monkeypatch.setattr(client_mod.time, "sleep", sleeps.append)
        client = ServiceClient(port=1, retries=2, backoff=0.25)
        with pytest.raises(ConnectionRefusedError):
            client.healthz()
        assert len(sleeps) == 2  # initial attempt + 2 retries
        # Exponential: the second delay is twice the first's base.
        assert sleeps[1] > sleeps[0]

    def test_zero_retries_fails_fast(self, monkeypatch):
        import repro.service.client as client_mod

        sleeps = []
        monkeypatch.setattr(client_mod.time, "sleep", sleeps.append)
        with pytest.raises(ConnectionRefusedError):
            ServiceClient(port=1).healthz()
        assert sleeps == []

    def test_backoff_schedule_is_deterministic_per_endpoint(self):
        a = ServiceClient(port=1, retries=3, backoff=0.25)
        b = ServiceClient(port=1, retries=3, backoff=0.25)
        other = ServiceClient(port=2, retries=3, backoff=0.25)
        schedule = [a._retry_delay(i) for i in range(3)]
        assert schedule == [b._retry_delay(i) for i in range(3)]
        # Distinct endpoints desynchronise (different jitter), and every
        # delay sits in the [base, 1.5 * base] jitter band.
        assert schedule != [other._retry_delay(i) for i in range(3)]
        for attempt, delay in enumerate(schedule):
            base = 0.25 * 2.0**attempt
            assert base <= delay <= 1.5 * base

    def test_retry_parameters_are_validated(self):
        with pytest.raises(ValueError, match="retries"):
            ServiceClient(retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            ServiceClient(backoff=-0.1)


class TestSessionCache:
    def test_grid_replays_from_cache_with_identical_digest(self):
        spec = make_spec()
        scenarios = [None, ("link-drop", {"drop_probability": 0.1})]
        cache = CellCache()
        cold = Session(name="cold", cache=cache).grid(spec, scenarios=scenarios)
        hits_before = cache.stats()["hits"]
        warm = Session(name="warm", cache=cache).grid(spec, scenarios=scenarios)
        assert cache.stats()["hits"] - hits_before == len(cold)
        assert warm.digest() == cold.digest()
        # And identical to an uncached session's digest.
        direct = Session(name="direct").grid(spec, scenarios=scenarios)
        assert direct.digest() == cold.digest()

    def test_renamed_spec_reuses_cache_and_restamps(self):
        cache = CellCache()
        Session(cache=cache).run(make_spec())
        result = Session(cache=cache).run(make_spec(name="renamed"))
        assert cache.stats()["hits"] == 1
        assert result.spec_name == "renamed"

    def test_replay_restamps_scenario_label_for_equivalent_spelling(self):
        # "clean" and None digest to the same cell, so a replay must carry
        # the *current* axis spelling's label — not the label stamped when
        # the cell originally executed.
        spec = make_spec()
        cache = CellCache()
        named = Session(cache=cache).grid(spec, scenarios=["clean"])
        assert named.results[0].scenario_name == "clean"
        replayed = Session(cache=cache).grid(spec, scenarios=[None])
        assert cache.stats()["hits"] == len(replayed)
        assert all(r.scenario_name is None for r in replayed)
        direct = Session().grid(spec, scenarios=[None])
        assert replayed.digest() == direct.digest()

    def test_keep_outputs_session_treats_outputless_entries_as_miss(self):
        cache = CellCache()
        Session(cache=cache).run(make_spec())  # caches without outputs
        kept = Session(cache=cache, keep_outputs=True).run(make_spec())
        assert kept.outputs is not None  # re-executed, not a blind replay

    def test_live_spec_cells_always_execute(self):
        import networkx as nx

        cache = CellCache()
        spec = make_spec(graph=nx.path_graph(6), graph_params={})
        Session(cache=cache).run(spec)
        Session(cache=cache).run(spec)
        assert len(cache) == 0


class TestRunCell:
    def test_matches_session_run(self):
        spec = make_spec()
        direct = Session().run(spec)
        standalone = run_cell(spec)
        assert standalone.signature() == direct.signature()

    def test_accepts_grid_cell_forms_and_cache(self):
        spec = make_spec()
        cache = CellCache()
        first = run_cell(
            spec,
            backend="reference",
            scenario=("link-drop", {"drop_probability": 0.1}),
            seed=1,
            cache=cache,
        )
        again = run_cell(
            spec,
            backend="reference",
            scenario=("link-drop", {"drop_probability": 0.1}),
            seed=1,
            cache=cache,
        )
        assert cache.stats()["hits"] == 1
        assert again.signature() == first.signature()


class TestProtocol:
    def test_round_trip(self):
        request = SubmitRequest(
            spec=make_spec().to_json(),
            client="tester",
            scenarios=[None, ("link-drop", {"drop_probability": 0.1})],
            timeout=5.0,
        )
        rebuilt = SubmitRequest.from_json(
            json.loads(json.dumps(request.to_json()))
        )
        assert rebuilt.client == "tester"
        assert rebuilt.timeout == 5.0
        assert rebuilt.scenarios == [
            None, ("link-drop", {"drop_probability": 0.1})
        ]

    @pytest.mark.parametrize(
        "payload, message",
        [
            ([], "must be a JSON object"),
            ({}, "missing the 'spec'"),
            ({"spec": 3}, "ExperimentSpec JSON object"),
            ({"spec": {}, "bogus": 1}, "unknown submit fields"),
            ({"spec": {}, "client": ""}, "'client'"),
            ({"spec": {}, "scenarios": []}, "non-empty JSON array"),
            ({"spec": {}, "scenarios": [3]}, "axis entries"),
            ({"spec": {}, "timeout": -1}, "positive number"),
        ],
    )
    def test_validation_errors(self, payload, message):
        with pytest.raises(ProtocolError, match=message):
            SubmitRequest.from_json(payload)

    def test_bad_spec_is_a_protocol_error(self):
        request = SubmitRequest(spec={"name": "x", "bogus": True})
        with pytest.raises(ProtocolError, match="invalid experiment spec"):
            request.build_spec()

    def test_enumerate_cells_matches_grid_order(self):
        spec = make_spec()
        request = SubmitRequest(
            spec=spec.to_json(),
            backends=["reference"],
            scenarios=[None, ("link-drop", {"drop_probability": 0.1})],
        )
        cells = request.enumerate_cells(request.build_spec())
        # scenario-major, then seed, then backend — Session.grid's nesting.
        assert [(c.cell_index, c.seed) for c in cells] == [
            (0, 0), (0, 1), (1, 0), (1, 1)
        ]
        digests = [c.digest for c in cells]
        assert all(d is not None for d in digests)
        assert len(set(digests)) == len(digests)


@pytest.fixture(scope="module")
def service_stack():
    if not _FORK:  # pragma: no cover - non-fork platforms
        pytest.skip("forked workers required")
    pool = WorkerPool(num_workers=2, start_method="fork").start()
    service = ExperimentService(pool, CellCache())
    server = ExperimentServer(service).start_in_background()
    client = ServiceClient(port=server.port, timeout=60)
    yield service, server, client
    server.stop()
    pool.close()


class TestServer:
    def test_healthz_and_status(self, service_stack):
        _, _, client = service_stack
        assert client.healthz() == {"ok": True}
        status = client.status()
        assert status["ok"] and status["pool"]["workers"] == 2
        assert "cache" in status

    def test_unknown_route_is_404(self, service_stack):
        _, _, client = service_stack
        with pytest.raises(ServiceError, match="no route"):
            client._json(client._request("GET", "/nope"))

    def test_bad_spec_is_400(self, service_stack):
        _, _, client = service_stack
        with pytest.raises(ServiceError, match="invalid experiment spec"):
            client.submit(SubmitRequest(spec={"name": "x", "bogus": 1}))

    def test_submit_digest_matches_direct_grid_and_warm_is_cached(
        self, service_stack
    ):
        service, _, client = service_stack
        spec = make_spec(name="svc-server")
        scenarios = [None, ("link-drop", {"drop_probability": 0.1})]
        direct = Session().grid(
            ExperimentSpec.from_json(spec.to_json()), scenarios=scenarios
        )
        request = SubmitRequest(
            spec=spec.to_json(), client="pytest", scenarios=scenarios
        )
        events = []
        cold = client.submit(request, on_event=events.append)
        assert cold["digest"] == direct.digest()
        assert cold["executed"] == len(direct)
        assert cold["failed"] == 0
        kinds = {event["kind"] for event in events}
        assert {"accepted", "cell_begin", "cell_end"} <= kinds

        warm = client.submit(request)
        assert warm["digest"] == cold["digest"]
        assert warm["cached"] == warm["cells"]
        assert warm["executed"] == 0

        # The reply's resultset is the BENCH_*.json shape.
        assert warm["resultset"]["experiment"] == "svc-server"
        assert len(warm["resultset"]["rows"]) == warm["cells"]

    def test_renamed_spec_hits_the_same_cache_entries(self, service_stack):
        _, _, client = service_stack
        spec = make_spec(name="svc-rename-a")
        first = client.submit(
            SubmitRequest(spec=spec.to_json(), client="pytest")
        )
        renamed = make_spec(name="svc-rename-b")
        second = client.submit(
            SubmitRequest(spec=renamed.to_json(), client="pytest")
        )
        assert second["cached"] == second["cells"]
        # Same deterministic rows, different experiment label.
        assert first["digest"] == second["digest"]
        assert second["resultset"]["experiment"] == "svc-rename-b"

    def test_equivalent_scenario_spelling_replays_with_current_label(
        self, service_stack
    ):
        _, _, client = service_stack
        spec = make_spec(name="svc-spelling")
        cold = client.submit(
            SubmitRequest(
                spec=spec.to_json(), client="pytest", scenarios=["clean"]
            )
        )
        warm = client.submit(
            SubmitRequest(
                spec=spec.to_json(), client="pytest", scenarios=[None]
            )
        )
        assert warm["cached"] == warm["cells"]
        assert cold["resultset"]["rows"][0]["scenario_name"] == "clean"
        assert warm["resultset"]["rows"][0]["scenario_name"] is None
        direct = Session(name="svc-spelling").grid(spec, scenarios=[None])
        assert warm["digest"] == direct.digest()

    def test_duplicate_digests_within_one_submission_execute_once(
        self, service_stack
    ):
        service, _, client = service_stack
        # Digest-unique graph params: the module-scope cache must not
        # already hold these cells (spec *names* don't enter digests).
        spec = make_spec(
            name="svc-dedup",
            graph_params={"n": 24, "avg_degree": 5.0, "seed": 77},
        )
        # The same scenario listed twice: per seed, both cells share a
        # digest, so the second must reuse the first's execution.
        scenarios = ["clean", "clean"]
        before = service.cache.stats()["dedup_hits"]
        events = []
        reply = client.submit(
            SubmitRequest(
                spec=spec.to_json(), client="pytest", scenarios=scenarios
            ),
            on_event=events.append,
        )
        seeds = len(SPEC_KWARGS["seeds"])
        assert reply["failed"] == 0
        assert reply["executed"] == seeds
        assert reply["deduped"] == seeds
        assert reply["cells"] == 2 * seeds
        assert len(reply["resultset"]["rows"]) == reply["cells"]
        assert service.cache.stats()["dedup_hits"] == before + seeds
        deduped_ends = [
            event
            for event in events
            if event["kind"] == "cell_end" and event.get("deduped")
        ]
        assert len(deduped_ends) == seeds
        # Deduped rows restamp cell_index/scenario, so the served grid
        # is byte-identical to a direct one that executes every cell.
        direct = Session().grid(
            ExperimentSpec.from_json(spec.to_json()), scenarios=scenarios
        )
        assert reply["digest"] == direct.digest()

    def test_non_streaming_submit(self, service_stack):
        _, _, client = service_stack
        request = SubmitRequest(
            spec=make_spec(name="svc-nostream").to_json(),
            client="pytest",
            stream=False,
        )
        reply = client.submit(request)
        assert reply["kind"] == "result"
        assert reply["failed"] == 0

    def test_service_handle_submit_inline(self, service_stack):
        """The transport-free core works without the HTTP layer."""
        service, _, _ = service_stack
        request = SubmitRequest(
            spec=make_spec(name="svc-inline").to_json(), client="inline"
        )
        seen = []

        async def main():
            async def emit(event):
                seen.append(event)

            return await service.handle_submit(request, emit)

        reply = asyncio.run(main())
        assert reply["kind"] == "result"
        assert seen and seen[0]["kind"] == "accepted"
