"""Worker-pool fault paths: crash-stop retry, timeouts, fair share.

The pool's workers are forked, so the driver workload registered at this
module's import exists in every worker without pickling.  The workload's
failure modes are driven by spec ``workload_params``:

* ``crash-once`` — SIGKILL the worker the first time the cell runs (a
  token file on disk remembers the first attempt), succeed on retry: the
  crash-stop story, a worker dying mid-cell must not fail the grid.
* ``crash-always`` — SIGKILL on every attempt: the bounded-retry story.
* ``hang`` — sleep far past any deadline: the timeout story.
* ``raise`` — ordinary workload exception: deterministic, never retried.
* ``wait-token`` blocks until a token file appears — holds the single
  worker busy so queues can be built up for the fair-share test.
"""

import asyncio
import multiprocessing
import os
import signal
import time

import pytest

from repro.congest.metrics import CongestMetrics
from repro.congest.network import SynchronousRun
from repro.experiments import ExperimentSpec, register_workload
from repro.service import (
    CellCache,
    CellCrashed,
    CellExecutionError,
    CellTimeout,
    ExperimentService,
    SubmitRequest,
    WorkerPool,
)
from repro.service.pool import CellJob, make_payload

_FORK = "fork" in multiprocessing.get_all_start_methods()
pytestmark = pytest.mark.skipif(not _FORK, reason="forked workers required")


@register_workload("svc-fault-driver", kind="driver")
def fault_driver(mode: str = "ok", token: str = "", hang_seconds: float = 600.0):
    def run(graph, *, backend, scenario, max_rounds, session=None):
        if mode == "wait-token":
            deadline = time.monotonic() + 30.0
            while not os.path.exists(token):
                if time.monotonic() > deadline:  # pragma: no cover
                    raise RuntimeError("release token never appeared")
                time.sleep(0.01)
        elif mode == "crash-once":
            if not os.path.exists(token):
                with open(token, "w") as fh:
                    fh.write("crashed")
                os.kill(os.getpid(), signal.SIGKILL)
        elif mode == "crash-always":
            os.kill(os.getpid(), signal.SIGKILL)
        elif mode == "hang":
            time.sleep(hang_seconds)
        elif mode == "raise":
            raise RuntimeError("workload exploded")
        metrics = CongestMetrics()
        metrics.add_rounds(1, phase="svc-fault")
        metrics.add_messages(0, phase="svc-fault", words=0)
        return SynchronousRun(
            rounds=1,
            metrics=metrics,
            outputs={vertex: 0 for vertex in graph},
            halted=True,
        )

    return run


def fault_spec(name="svc-fault", seeds=(0,), **params):
    return ExperimentSpec(
        name=name,
        graph="erdos-renyi",
        graph_params={"n": 8, "avg_degree": 3.0, "seed": 1},
        workload="svc-fault-driver",
        workload_params=params,
        backend="reference",
        seeds=seeds,
        max_rounds=100,
    )


def make_job(spec, seed=0, client="tester", timeout=None, max_attempts=2):
    return CellJob(
        client=client,
        payload=make_payload(
            spec.to_json(),
            backend=spec.backend,
            scenario=spec.scenario,
            seed=seed,
        ),
        digest=spec.cell_digest(seed=seed),
        timeout=timeout,
        max_attempts=max_attempts,
    )


@pytest.fixture
def pool():
    pool = WorkerPool(num_workers=2, start_method="fork", max_attempts=2)
    with pool:
        yield pool


class TestCrashRetry:
    def test_sigkill_mid_cell_is_retried_and_completes(self, pool, tmp_path):
        spec = fault_spec(
            mode="crash-once", token=str(tmp_path / "crash.tok"), seeds=(0, 1, 2)
        )
        futures = [pool.submit(make_job(spec, seed=seed)) for seed in (0, 1, 2)]
        results = [future.result(timeout=60) for future in futures]
        assert all(result.halted for result in results)
        assert {result.seed for result in results} == {0, 1, 2}
        assert pool.crashes >= 1
        assert pool.retries >= 1

    def test_crash_every_attempt_exhausts_bounded_retries(self, pool, tmp_path):
        bad = fault_spec(name="svc-crash-always", mode="crash-always")
        good = fault_spec(name="svc-ok")
        bad_future = pool.submit(make_job(bad, client="bad"))
        good_future = pool.submit(make_job(good, client="good"))
        assert good_future.result(timeout=60).halted
        with pytest.raises(CellCrashed, match="attempts exhausted"):
            bad_future.result(timeout=60)
        assert pool.crashes == 2  # both attempts died

    def test_workload_exception_is_not_retried(self, pool):
        spec = fault_spec(name="svc-raise", mode="raise")
        future = pool.submit(make_job(spec))
        with pytest.raises(CellExecutionError, match="workload exploded") as info:
            future.result(timeout=60)
        assert "RuntimeError" in info.value.traceback
        assert pool.crashes == 0
        assert pool.retries == 0


class TestTimeouts:
    def test_timeout_fails_cell_without_stalling_other_clients(self, pool):
        hang = fault_spec(name="svc-hang", mode="hang")
        quick = fault_spec(name="svc-quick", seeds=(0, 1, 2, 3))
        hang_future = pool.submit(
            make_job(hang, client="hog", timeout=0.75)
        )
        quick_futures = [
            pool.submit(make_job(quick, seed=seed, client="light"))
            for seed in range(4)
        ]
        # The other client's queue drains on the remaining worker while the
        # hog's cell is still inside its budget.
        start = time.monotonic()
        for future in quick_futures:
            assert future.result(timeout=60).halted
        assert time.monotonic() - start < 30.0
        with pytest.raises(CellTimeout, match="budget"):
            hang_future.result(timeout=60)
        assert pool.timeouts == 1
        # The killed worker was replaced: the pool still executes new work.
        again = pool.submit(make_job(quick, seed=0, client="light"))
        assert again.result(timeout=60).halted


class TestFairShare:
    def test_round_robin_interleaves_clients(self, tmp_path):
        token = str(tmp_path / "release.tok")
        blocker = fault_spec(name="svc-blocker", mode="wait-token", token=token)
        quick = fault_spec(name="svc-rr", seeds=(0, 1, 2, 3))
        pool = WorkerPool(num_workers=1, start_method="fork")
        with pool:
            gate = pool.submit(make_job(blocker, client="gate"))
            # Build both clients' queues while the single worker is held.
            alpha = [
                pool.submit(make_job(quick, seed=seed, client="alpha"))
                for seed in range(4)
            ]
            beta = [
                pool.submit(make_job(quick, seed=seed, client="beta"))
                for seed in range(4)
            ]
            deadline = time.monotonic() + 10.0
            while pool.stats()["queued"] < 8:  # pragma: no cover - fast path
                if time.monotonic() > deadline:
                    raise AssertionError("jobs never queued")
                time.sleep(0.01)
            with open(token, "w") as fh:
                fh.write("go")
            assert gate.result(timeout=60).halted
            for future in alpha + beta:
                assert future.result(timeout=60).halted
            interleaved = pool.dispatch_log[1:]
        assert sorted(interleaved) == ["alpha"] * 4 + ["beta"] * 4
        # Strict alternation: with both queues nonempty, no client is ever
        # served twice in a row.
        assert set(interleaved[0::2]) != set(interleaved[1::2])
        for position in range(len(interleaved) - 1):
            assert interleaved[position] != interleaved[position + 1]


class TestServiceFaultHandling:
    def test_crashed_cell_grid_still_completes(self, pool, tmp_path):
        service = ExperimentService(pool, CellCache())
        spec = fault_spec(
            name="svc-grid-crash",
            mode="crash-once",
            token=str(tmp_path / "grid.tok"),
            seeds=(0, 1),
        )
        request = SubmitRequest(spec=spec.to_json(), client="grid")
        reply = asyncio.run(service.handle_submit(request))
        assert reply["failed"] == 0
        assert len(reply["resultset"]["rows"]) == 2

    def test_failed_cell_is_listed_not_fatal(self, pool):
        service = ExperimentService(pool, CellCache())
        spec = fault_spec(name="svc-grid-raise", mode="raise", seeds=(0,))
        request = SubmitRequest(spec=spec.to_json(), client="grid")
        reply = asyncio.run(service.handle_submit(request))
        assert reply["failed"] == 1
        assert reply["failures"][0]["error"] == "CellExecutionError"
        assert reply["resultset"]["rows"] == []

    def test_timeout_cell_is_listed_not_fatal(self, pool):
        service = ExperimentService(pool, CellCache())
        spec = fault_spec(name="svc-grid-hang", mode="hang", seeds=(0,))
        request = SubmitRequest(
            spec=spec.to_json(), client="grid", timeout=0.75
        )
        reply = asyncio.run(service.handle_submit(request))
        assert reply["failed"] == 1
        assert reply["failures"][0]["error"] == "CellTimeout"
