"""Tests of the graph substrate: generators, properties, clique enumeration."""

import math

import networkx as nx
import pytest

from repro.graphs import (
    canonical_clique,
    clustered_communities,
    cliques_containing_edge,
    conductance_of_cut,
    count_cliques,
    degree_statistics,
    deterministic_seed,
    enumerate_cliques,
    erdos_renyi,
    expander_like,
    graph_conductance_estimate,
    mixing_time_estimate,
    planted_cliques,
    power_law,
    ring_of_cliques,
    spectral_gap,
    volume,
)
from repro.graphs.cliques import triangles_of_vertex


class TestGenerators:
    def test_vertices_are_contiguous_integers(self):
        for graph in (
            erdos_renyi(30, 5.0, seed=1),
            planted_cliques(30, 4, 3, seed=1),
            clustered_communities(3, 10, seed=1),
            power_law(30, seed=1),
            ring_of_cliques(4, 5),
            expander_like(30, 6, seed=1),
        ):
            assert sorted(graph.nodes) == list(range(graph.number_of_nodes()))

    def test_generators_are_deterministic(self):
        first = erdos_renyi(50, 6.0, seed=9)
        second = erdos_renyi(50, 6.0, seed=9)
        assert set(first.edges) == set(second.edges)
        assert set(erdos_renyi(50, 6.0, seed=10).edges) != set(first.edges)

    def test_planted_cliques_contain_cliques(self):
        graph = planted_cliques(40, 5, 4, background_avg_degree=2.0, seed=2)
        assert count_cliques(graph, 5) >= 1

    def test_planted_clique_size_validation(self):
        with pytest.raises(ValueError):
            planted_cliques(20, 1, 2)

    def test_ring_of_cliques_exact_triangle_count(self):
        graph = ring_of_cliques(5, 5)
        # Each K5 contains C(5,3)=10 triangles; connecting edges add none.
        assert count_cliques(graph, 3) == 5 * 10

    def test_expander_like_is_regular(self):
        graph = expander_like(40, degree=6, seed=0)
        degrees = {d for _, d in graph.degree()}
        assert degrees == {6}

    def test_deterministic_seed_stable(self):
        assert deterministic_seed("a", 1) == deterministic_seed("a", 1)
        assert deterministic_seed("a", 1) != deterministic_seed("a", 2)


class TestProperties:
    def test_volume_is_degree_sum(self):
        graph = nx.path_graph(4)
        assert volume(graph, [0, 1]) == 1 + 2

    def test_conductance_of_trivial_cut_is_infinite(self):
        graph = nx.complete_graph(4)
        assert conductance_of_cut(graph, set()) == math.inf
        assert conductance_of_cut(graph, set(graph.nodes)) == math.inf

    def test_conductance_of_balanced_cut_in_clique(self):
        graph = nx.complete_graph(6)
        value = conductance_of_cut(graph, {0, 1, 2})
        assert value == pytest.approx(9 / 15)

    def test_spectral_gap_complete_vs_path(self):
        assert spectral_gap(nx.complete_graph(20)) > spectral_gap(nx.path_graph(20))

    def test_conductance_estimate_detects_bottleneck(self):
        barbell = nx.barbell_graph(10, 0)
        expander = nx.complete_graph(20)
        assert graph_conductance_estimate(barbell) < graph_conductance_estimate(expander)

    def test_disconnected_graph_has_zero_gap(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        assert spectral_gap(graph) == 0.0
        assert mixing_time_estimate(graph) == math.inf

    def test_mixing_time_smaller_for_expanders(self):
        assert mixing_time_estimate(nx.complete_graph(30)) < mixing_time_estimate(
            nx.cycle_graph(30)
        )

    def test_degree_statistics(self):
        graph = nx.star_graph(5)  # center degree 5, leaves degree 1
        stats = degree_statistics(graph)
        assert stats.minimum == 1
        assert stats.maximum == 5
        assert stats.average == pytest.approx(10 / 6)
        assert stats.as_dict()["max"] == 5


class TestCliqueEnumeration:
    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            enumerate_cliques(nx.complete_graph(3), 0)

    def test_small_sizes(self):
        graph = nx.complete_graph(4)
        assert enumerate_cliques(graph, 1) == {(0,), (1,), (2,), (3,)}
        assert len(enumerate_cliques(graph, 2)) == 6

    def test_complete_graph_counts_match_binomials(self):
        graph = nx.complete_graph(7)
        assert count_cliques(graph, 3) == math.comb(7, 3)
        assert count_cliques(graph, 4) == math.comb(7, 4)
        assert count_cliques(graph, 5) == math.comb(7, 5)

    def test_matches_networkx_triangle_count(self, small_dense_graph):
        expected = sum(nx.triangles(small_dense_graph).values()) // 3
        assert count_cliques(small_dense_graph, 3) == expected

    def test_cliques_are_canonical_and_really_cliques(self, planted_graph):
        for clique in enumerate_cliques(planted_graph, 4):
            assert clique == canonical_clique(clique)
            for u in clique:
                for v in clique:
                    if u != v:
                        assert planted_graph.has_edge(u, v)

    def test_cliques_containing_edge(self):
        graph = nx.complete_graph(5)
        found = cliques_containing_edge(graph, (0, 1), 3)
        assert found == {(0, 1, 2), (0, 1, 3), (0, 1, 4)}
        assert cliques_containing_edge(graph, (0, 1), 5) == {(0, 1, 2, 3, 4)}

    def test_cliques_containing_missing_edge_is_empty(self):
        graph = nx.path_graph(4)
        assert cliques_containing_edge(graph, (0, 3), 3) == set()

    def test_triangles_of_vertex(self, tiny_triangle_graph):
        assert triangles_of_vertex(tiny_triangle_graph, 2) == {(0, 1, 2), (1, 2, 3)}
        assert triangles_of_vertex(tiny_triangle_graph, 4) == set()
