"""Tests of the baseline algorithms (naive, randomized, DLP12, CS20)."""

import networkx as nx
import pytest

from repro import list_triangles, validate_listing
from repro.baselines import (
    congested_clique_listing,
    cs20_triangle_listing,
    naive_listing,
    randomized_partition_listing,
)
from repro.congest.cost import unit_overhead
from repro.graphs import enumerate_cliques, erdos_renyi, planted_cliques


class TestNaiveBaseline:
    def test_correct_for_triangles_and_k4(self, planted_graph):
        for p in (3, 4):
            result = naive_listing(planted_graph, p=p)
            assert result.cliques == enumerate_cliques(planted_graph, p)

    def test_rounds_track_max_degree(self):
        sparse = erdos_renyi(60, 4.0, seed=1)
        dense = erdos_renyi(60, 30.0, seed=1)
        assert naive_listing(dense).rounds > naive_listing(sparse).rounds


class TestRandomizedBaseline:
    def test_correct_listing(self, planted_graph):
        result, _ = randomized_partition_listing(planted_graph, p=3, seed=1)
        assert result.cliques == enumerate_cliques(planted_graph, 3)

    def test_correct_for_k4(self, small_dense_graph):
        result, _ = randomized_partition_listing(small_dense_graph, p=4, seed=1)
        assert result.cliques == enumerate_cliques(small_dense_graph, 4)

    def test_balance_report_reasonable(self, small_dense_graph):
        _, report = randomized_partition_listing(small_dense_graph, p=3, seed=3)
        assert report.x >= 2
        assert report.max_pair_edges >= 0
        assert report.balance_ratio >= 1.0 or report.max_pair_edges == 0

    def test_empty_graph(self):
        result, report = randomized_partition_listing(nx.empty_graph(5), p=3)
        assert result.cliques == set()
        assert report.x == 0

    def test_different_seeds_same_cliques(self, planted_graph):
        first, _ = randomized_partition_listing(planted_graph, p=3, seed=1)
        second, _ = randomized_partition_listing(planted_graph, p=3, seed=2)
        assert first.cliques == second.cliques


class TestCongestedCliqueBaseline:
    def test_correct_listing(self, planted_graph):
        for p in (3, 4):
            result, _ = congested_clique_listing(planted_graph, p=p)
            assert result.cliques == enumerate_cliques(planted_graph, p)

    def test_round_count_much_smaller_than_congest(self, small_dense_graph):
        """The Congested Clique has n^2 links, so the same listing is far cheaper."""
        clique_result, _ = congested_clique_listing(small_dense_graph, p=3)
        congest_result = list_triangles(small_dense_graph)
        assert clique_result.rounds < congest_result.rounds

    def test_report_fields(self, small_dense_graph):
        _, report = congested_clique_listing(small_dense_graph, p=3)
        assert report.groups <= report.x + 1
        assert report.tuples > 0
        assert report.theoretical_rounds > 0

    def test_empty_graph(self):
        result, report = congested_clique_listing(nx.empty_graph(0), p=3)
        assert result.cliques == set()
        assert report.tuples == 0


class TestCS20Baseline:
    def test_correct_listing(self, planted_graph):
        result = cs20_triangle_listing(planted_graph)
        assert result.cliques == enumerate_cliques(planted_graph, 3)

    def test_grows_faster_than_new_algorithm_on_dense_graphs(self):
        """The headline separation: n^{2/3} (CS20) versus n^{1/3} (the paper).

        At benchmark-scale ``n`` the absolute totals are dominated by shared
        additive ``n^{o(1)}`` terms (decomposition), so the separation shows
        up in the *growth* of the per-level cluster-listing cost.
        """

        def cluster_rounds(result):
            return sum(report.max_cluster_rounds for report in result.level_reports)

        small_n, large_n = 100, 400
        small_graph = erdos_renyi(small_n, 0.3 * small_n, seed=4)
        large_graph = erdos_renyi(large_n, 0.3 * large_n, seed=4)
        old_small = cs20_triangle_listing(small_graph, overhead=unit_overhead())
        old_large = cs20_triangle_listing(large_graph, overhead=unit_overhead())
        new_small = list_triangles(small_graph, overhead=unit_overhead())
        new_large = list_triangles(large_graph, overhead=unit_overhead())
        assert old_large.cliques == new_large.cliques
        old_growth = cluster_rounds(old_large) / max(1, cluster_rounds(old_small))
        new_growth = cluster_rounds(new_large) / max(1, cluster_rounds(new_small))
        assert old_growth > new_growth

    def test_correct_on_communities(self, community_graph):
        result = cs20_triangle_listing(community_graph)
        assert validate_listing(community_graph, result).correct
