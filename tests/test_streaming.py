"""Tests of partial-pass streaming: streams, budgets, chains, simulation."""

import math

import pytest

from repro.congest.cost import CostAccountant, unit_overhead
from repro.decomposition.cluster import build_communication_cluster
from repro.decomposition.routing import ClusterRouter
from repro.graphs import erdos_renyi
from repro.streaming import (
    MainToken,
    PartialPassAlgorithm,
    SimulationPlan,
    Stream,
    StreamBudgetError,
    StreamingParameters,
    VertexChain,
    build_vertex_chain,
    disjoint_chains,
    simulate_in_cluster,
    simulate_leader_with_queries,
    simulate_state_passing,
)
from repro.streaming.simulation import AlgorithmInstance


def _tokens(values, owners=None, aux=None):
    owners = owners or list(range(len(values)))
    aux = aux or [()] * len(values)
    return [
        MainToken(index=i, owner=owners[i], summary=values[i], auxiliary=tuple(aux[i]))
        for i in range(len(values))
    ]


class SummingAlgorithm(PartialPassAlgorithm):
    """Reads every main token and writes the running sum (no GET-AUX)."""

    def __init__(self, n_in):
        self.n_in = n_in

    def parameters(self):
        return StreamingParameters(token_bits=64, n_in=self.n_in, n_out=self.n_in,
                                   b_aux=0, b_write=1)

    def process(self, stream):
        total = 0
        while True:
            token = stream.read()
            if token is None:
                break
            total += token.summary
            stream.write(total)


class ThresholdZoom(PartialPassAlgorithm):
    """Zooms into auxiliary tokens whenever the main summary exceeds a threshold."""

    def __init__(self, n_in, threshold, b_aux):
        self.n_in = n_in
        self.threshold = threshold
        self.b_aux = b_aux

    def parameters(self):
        return StreamingParameters(token_bits=64, n_in=self.n_in, n_out=4 * self.n_in,
                                   b_aux=self.b_aux, b_write=4 * self.n_in)

    def process(self, stream):
        while True:
            token = stream.read()
            if token is None:
                break
            if token.summary > self.threshold:
                stream.get_aux()
                for _ in range(token.num_auxiliary):
                    aux = stream.read()
                    stream.write(("aux", aux))
            else:
                stream.write(("main", token.summary))


class TestStream:
    def test_read_returns_tokens_in_order_then_none(self):
        stream = Stream(_tokens([10, 20, 30]))
        assert [stream.read().summary for _ in range(3)] == [10, 20, 30]
        assert stream.read() is None
        assert stream.exhausted

    def test_tokens_must_be_consecutively_numbered(self):
        bad = [MainToken(index=0, owner=0, summary=1), MainToken(index=2, owner=1, summary=2)]
        with pytest.raises(ValueError):
            Stream(bad)

    def test_get_aux_prepends_auxiliary_tokens(self):
        stream = Stream(_tokens([5, 7], aux=[("a", "b"), ()]))
        stream.read()
        stream.get_aux()
        assert stream.read() == "a"
        assert stream.read() == "b"
        assert stream.read().summary == 7

    def test_get_aux_before_read_fails(self):
        stream = Stream(_tokens([1]))
        with pytest.raises(StreamBudgetError):
            stream.get_aux()

    def test_get_aux_twice_on_same_token_fails(self):
        stream = Stream(_tokens([1], aux=[("x",)]))
        stream.read()
        stream.get_aux()
        with pytest.raises(StreamBudgetError):
            stream.get_aux()

    def test_b_aux_budget_enforced(self):
        stream = Stream(_tokens([1, 2], aux=[("x",), ("y",)]), b_aux=1)
        stream.read()
        stream.get_aux()
        stream.read()
        stream.read()
        with pytest.raises(StreamBudgetError):
            stream.get_aux()

    def test_b_write_budget_enforced(self):
        stream = Stream(_tokens([1, 2]), b_write=1)
        stream.read()
        stream.write("one")
        with pytest.raises(StreamBudgetError):
            stream.write("two")

    def test_access_log_counts(self):
        stream = Stream(_tokens([3, 9], aux=[(), ("a",)]))
        stream.read()
        stream.write("w1")
        stream.read()
        stream.get_aux()
        stream.read()
        log = stream.log
        assert log.main_reads == 2
        assert log.auxiliary_reads == 1
        assert log.get_aux_calls == 1
        assert log.writes == 1


class TestStreamingParameters:
    def test_validate_log_flags_violations(self):
        params = StreamingParameters(token_bits=8, n_in=3, n_out=1, b_aux=0, b_write=1)
        stream = Stream(_tokens([1, 2, 3]))
        stream.read()
        stream.write("a")
        stream.read()
        stream.write("b")
        with pytest.raises(AssertionError):
            params.validate_log(stream.log)


class TestVertexChain:
    def test_block_assignment_contiguous(self):
        chain = build_vertex_chain(range(10), beta=3)
        chain.validate()
        assert len(chain) == 4
        assert chain.block(1) == (0, 1, 2)
        assert chain.block(4) == (9,)
        assert chain.responsible_for(5) == chain[2]

    def test_assignment_covers_universe(self):
        chain = build_vertex_chain(range(17), beta=5)
        assignment = chain.assignment()
        assert set(assignment) == set(range(17))

    def test_out_of_range_access(self):
        chain = build_vertex_chain(range(6), beta=2)
        with pytest.raises(IndexError):
            chain.block(0)
        with pytest.raises(KeyError):
            chain.responsible_for(99)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            build_vertex_chain(range(4), beta=0)

    def test_disjoint_chains_are_disjoint(self):
        chains = disjoint_chains(range(30), beta=10, num_chains=3)
        members = [set(chain.members) for chain in chains]
        assert not (members[0] & members[1])
        assert not (members[1] & members[2])

    def test_disjoint_chains_infeasible(self):
        with pytest.raises(ValueError):
            disjoint_chains(range(10), beta=2, num_chains=5)


def _make_cluster(n=60, avg_degree=12.0, delta=3):
    graph = erdos_renyi(n, avg_degree, seed=4)
    cluster = build_communication_cluster(graph, graph.edges, delta=delta)
    accountant = CostAccountant(n=n, overhead=unit_overhead())
    router = ClusterRouter(cluster=cluster, accountant=accountant)
    return cluster, router


class TestSimulation:
    def test_simulated_output_matches_reference(self):
        cluster, router = _make_cluster()
        members = cluster.ordered_members()
        values = list(range(len(members)))
        tokens = _tokens(values, owners=members)
        algorithm = SummingAlgorithm(n_in=len(tokens))
        reference = algorithm.run_reference(Stream(list(tokens)))
        plan = SimulationPlan(cluster=cluster, t_max=1)
        result = simulate_in_cluster(
            [AlgorithmInstance(algorithm=SummingAlgorithm(len(tokens)), tokens=tokens)],
            plan, router=router,
        )
        assert result.outputs[0] == reference
        assert result.rounds > 0

    def test_input_contiguity_enforced(self):
        cluster, router = _make_cluster()
        members = cluster.ordered_members()
        tokens = _tokens([1, 2], owners=[members[1], members[0]])
        plan = SimulationPlan(cluster=cluster, t_max=1)
        with pytest.raises(ValueError):
            simulate_in_cluster(
                [AlgorithmInstance(algorithm=SummingAlgorithm(2), tokens=tokens)],
                plan, router=router,
            )

    def test_get_aux_excursions_counted_and_outputs_stored(self):
        cluster, router = _make_cluster()
        members = cluster.ordered_members()
        values = [1, 100, 1, 100]
        aux = [(), ("a1", "a2"), (), ("b1",)]
        tokens = _tokens(values, owners=members[:4], aux=aux)
        algorithm = ThresholdZoom(n_in=4, threshold=50, b_aux=4)
        plan = SimulationPlan(cluster=cluster, t_max=1)
        result = simulate_in_cluster(
            [AlgorithmInstance(algorithm=algorithm, tokens=tokens)], plan, router=router
        )
        assert result.aux_excursions == 2
        assert ("aux", "a1") in result.outputs[0]  # aux payloads preserved verbatim
        assert ("main", 1) in result.outputs[0]
        # Every output token is stored at some V^- vertex.
        for holders in result.output_holders:
            for vertex in holders.values():
                assert vertex in cluster.v_minus

    def test_parallel_instances_all_complete(self):
        cluster, router = _make_cluster()
        members = cluster.ordered_members()
        instances = []
        for shift in range(3):
            values = [v + shift for v in range(len(members))]
            tokens = _tokens(values, owners=members)
            instances.append(AlgorithmInstance(algorithm=SummingAlgorithm(len(tokens)), tokens=tokens))
        plan = SimulationPlan(cluster=cluster, t_max=1)
        result = simulate_in_cluster(instances, plan, router=router)
        assert result.zeta == 3
        assert len(result.outputs) == 3
        assert all(len(out) == len(members) for out in result.outputs)

    def test_theoretical_bound_positive(self):
        cluster, router = _make_cluster()
        members = cluster.ordered_members()
        tokens = _tokens(list(range(len(members))), owners=members)
        plan = SimulationPlan(cluster=cluster, t_max=1)
        result = simulate_in_cluster(
            [AlgorithmInstance(algorithm=SummingAlgorithm(len(tokens)), tokens=tokens)],
            plan, router=router,
        )
        assert result.theoretical_round_bound() > 0


class TestExtremeApproaches:
    """Section 1.2: the combined approach beats both extremes on their weak axis."""

    def _instances(self, cluster, copies=4):
        members = cluster.ordered_members()
        instances = []
        for shift in range(copies):
            tokens = _tokens([v + shift for v in range(len(members))], owners=members)
            instances.append(AlgorithmInstance(algorithm=SummingAlgorithm(len(tokens)), tokens=tokens))
        return instances

    def test_all_three_produce_identical_outputs(self):
        cluster, router = _make_cluster()
        plan = SimulationPlan(cluster=cluster, t_max=1)
        instances = self._instances(cluster)
        combined = simulate_in_cluster(instances, plan, router=router)
        state = simulate_state_passing(instances, plan)
        leader = simulate_leader_with_queries(instances, plan)
        assert combined.outputs == state.outputs == leader.outputs

    def test_state_passing_uses_many_hand_offs(self):
        cluster, _ = _make_cluster()
        plan = SimulationPlan(cluster=cluster, t_max=1)
        instances = self._instances(cluster)
        combined = simulate_in_cluster(
            instances, plan,
            router=ClusterRouter(cluster=cluster,
                                 accountant=CostAccountant(n=cluster.n, overhead=unit_overhead())),
        )
        state = simulate_state_passing(instances, plan)
        assert state.state_passes > combined.state_passes

    def test_leader_concentrates_messages(self):
        cluster, _ = _make_cluster()
        plan = SimulationPlan(cluster=cluster, t_max=1)
        instances = self._instances(cluster)
        leader = simulate_leader_with_queries(instances, plan)
        combined = simulate_in_cluster(
            instances, plan,
            router=ClusterRouter(cluster=cluster,
                                 accountant=CostAccountant(n=cluster.n, overhead=unit_overhead())),
        )
        # The leader personally stores every non-aux output token.
        leader_vertex = cluster.ordered_members()[0]
        assert all(
            holder == leader_vertex
            for holders in leader.output_holders for holder in holders.values()
        )
        assert combined.max_output_tokens_per_vertex() < sum(
            len(out) for out in leader.outputs
        )
