"""Tests of the analysis helpers: power-law fits and report tables."""

import math

import pytest

from repro.analysis import (
    ExperimentTable,
    ScalingFit,
    fit_power_law,
    format_table,
    normalized_rounds,
    predicted_exponent,
)
from repro.congest.cost import polylog_overhead


class TestPowerLawFit:
    def test_exact_power_law_recovered(self):
        xs = [10, 100, 1000, 10_000]
        ys = [3 * x ** 0.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.5, abs=1e-9)
        assert fit.constant == pytest.approx(3.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_prediction(self):
        fit = ScalingFit(exponent=2.0, constant=1.5, r_squared=1.0)
        assert fit.predict(4) == pytest.approx(24.0)

    def test_noisy_data_r_squared_below_one(self):
        xs = [10, 20, 40, 80, 160]
        ys = [x ** 0.7 * (1.3 if i % 2 else 0.8) for i, x in enumerate(xs)]
        fit = fit_power_law(xs, ys)
        assert 0.3 < fit.exponent < 1.1
        assert fit.r_squared < 1.0

    def test_insufficient_data_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law([10], [5])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [3])


class TestPredictedExponent:
    def test_paper_targets(self):
        assert predicted_exponent(3) == pytest.approx(1 / 3)
        assert predicted_exponent(4) == pytest.approx(1 / 2)
        assert predicted_exponent(5) == pytest.approx(3 / 5)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            predicted_exponent(2)


class TestNormalizedRounds:
    def test_divides_by_overhead(self):
        overhead = polylog_overhead()
        assert normalized_rounds(100.0, 1024, overhead) == pytest.approx(10.0)


class TestExperimentTable:
    def test_render_contains_all_cells(self):
        table = ExperimentTable(title="demo", columns=["rounds", "ok"])
        table.add_row("n=10", rounds=12, ok=True)
        table.add_row("n=20", rounds=34.5678, ok=False)
        text = format_table(table)
        assert "demo" in text
        assert "n=10" in text and "12" in text
        assert "34.6" in text  # floats rendered with 3 significant digits

    def test_unknown_column_rejected(self):
        table = ExperimentTable(title="demo", columns=["a"])
        with pytest.raises(KeyError):
            table.add_row("x", b=1)
