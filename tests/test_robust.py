"""The robust compiler: codec, erasure code, strategies, end-to-end recovery.

Layered like the subsystem itself:

* the payload <-> 16-bit-symbol codec must round-trip every payload shape
  the engine ships (hypothesis);
* the Cauchy erasure code must reconstruct from *any* ``d`` of ``d + f``
  shares (the MDS guarantee), and the checksum layer must turn corrupt
  shares into erasures;
* both strategies must carry a logical payload through loss and lies;
* the compiled protocol must reproduce the bare algorithm's *clean* outputs
  under crash-stop and Byzantine vertex faults that demonstrably break the
  bare run — on every backend — while reporting its round stretch.
"""

from __future__ import annotations

import itertools

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.naive import FloodMinimum
from repro.engine.runner import run_algorithm
from repro.experiments import ExperimentSpec, Session
from repro.graphs import erdos_renyi
from repro.robust import (
    ByzantineVertexScenario,
    CrashStopVertexScenario,
    ErasureCodingStrategy,
    ReplicationStrategy,
    compile_robust,
    replica_graph,
    resolve_strategy,
)
from repro.robust.coding import (
    CodecError,
    decode_payload,
    decode_shares,
    encode_payload,
    encode_shares,
    share_checksum,
)
from repro.robust.strategies import majority_vote

BACKENDS = ["reference", "vectorized", "sharded"]

# -- codec -------------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False),
    st.text(max_size=12),
)
payloads = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.tuples(inner, inner),
        st.lists(inner, max_size=4),
    ),
    max_leaves=12,
)


@given(payload=payloads)
@settings(max_examples=200, deadline=None)
def test_codec_round_trips_every_payload_shape(payload):
    symbols = encode_payload(payload)
    assert all(0 <= symbol < (1 << 16) for symbol in symbols)
    decoded = decode_payload(symbols)
    assert decoded == payload
    assert type(decoded) is type(payload)


def test_codec_pickle_fallback_for_exotic_payloads():
    payload = frozenset({1, 2, 3})
    assert decode_payload(encode_payload(payload)) == payload


def test_small_ints_encode_compactly():
    # The dominant CONGEST payload must stay cheap: tag + one varint symbol.
    assert len(encode_payload(7)) == 2
    assert len(encode_payload((1, 2, 3))) <= 8


def test_malformed_streams_raise_codec_error():
    with pytest.raises(CodecError):
        decode_payload([])
    with pytest.raises(CodecError):
        decode_payload([3])  # int tag with no varint body
    with pytest.raises(CodecError):
        decode_payload([999])  # unknown tag
    with pytest.raises(CodecError):
        decode_payload([6, 0x8000])  # runaway container count varint


# -- erasure code ------------------------------------------------------------


@given(
    payload=payloads,
    d=st.integers(min_value=1, max_value=4),
    f=st.integers(min_value=0, max_value=3),
    data=st.data(),
)
@settings(max_examples=120, deadline=None)
def test_any_d_of_k_shares_reconstruct(payload, d, f, data):
    symbols = encode_payload(payload)
    shares = encode_shares(symbols, d, f)
    assert len(shares) == d + f
    assert len({len(chunk) for chunk in shares}) == 1  # equal-length chunks
    subset = data.draw(
        st.sampled_from(list(itertools.combinations(range(d + f), d)))
    )
    survivors = {index: shares[index] for index in subset}
    recovered = decode_shares(survivors, d, f)
    assert recovered is not None
    assert decode_payload(recovered) == payload


def test_too_few_shares_fail_closed():
    shares = encode_shares(encode_payload((1, 2, 3, 4, 5)), 3, 2)
    assert decode_shares({0: shares[0], 4: shares[4]}, 3, 2) is None
    assert decode_shares({}, 3, 2) is None


def test_checksum_binds_share_to_origin_and_position():
    chunk = [17, 4096]
    baseline = share_checksum("v", "tag", 0, chunk)
    assert baseline == share_checksum("v", "tag", 0, list(chunk))
    assert baseline != share_checksum("w", "tag", 0, chunk)
    assert baseline != share_checksum("v", "other", 0, chunk)
    assert baseline != share_checksum("v", "tag", 1, chunk)
    assert baseline != share_checksum("v", "tag", 0, [18, 4096])


# -- strategies --------------------------------------------------------------


def test_majority_vote_breaks_ties_deterministically():
    assert majority_vote([1, 2, 2]) == 2
    assert majority_vote([[1], [1], [2]]) == [1]  # unhashable payloads vote
    assert majority_vote([1, 2]) == 1  # tie -> smallest repr, every replica agrees
    with pytest.raises(ValueError):
        majority_vote([])


@pytest.mark.parametrize(
    "strategy",
    [ReplicationStrategy(f=1), ErasureCodingStrategy(d=2, f=1)],
    ids=["replication", "erasure-coding"],
)
def test_strategy_survives_f_losses_and_f_lies(strategy):
    payload = (42, "label", [1, 2, 3])
    shares = strategy.shares(payload, sender="u", tag="t")
    assert len(shares) == strategy.k
    entries = list(enumerate(shares))
    ok, decoded = strategy.decode(entries, sender="u", tag="t")
    assert ok and decoded == payload
    # Drop one share (crash-stop): still decodes.
    ok, decoded = strategy.decode(entries[1:], sender="u", tag="t")
    assert ok and decoded == payload
    # Corrupt one share (Byzantine): outvoted or checksum-erased.
    corrupt = [(0, _flip(shares[0]))] + entries[1:]
    ok, decoded = strategy.decode(corrupt, sender="u", tag="t")
    assert ok and decoded == payload


def _flip(share):
    if type(share) is tuple:
        return tuple(s ^ 1 if type(s) is int else s for s in share)
    return -1


def test_erasure_strategy_rejects_malformed_and_forged_shares():
    strategy = ErasureCodingStrategy(d=2, f=1)
    shares = strategy.shares(123456, sender="u", tag="t")
    entries = list(enumerate(shares))
    # A forged checksum, a wrong-arity share, an out-of-range index, and a
    # duplicate index are all ignored — decode still succeeds from the rest.
    noise = [(0, (999, 1, 2)), (0, "garbage"), (7, shares[0]), (1, shares[1])]
    ok, decoded = strategy.decode(noise + entries, sender="u", tag="t")
    assert ok and decoded == 123456
    # But only forged shares -> too few survivors -> fail closed.
    forged = [(i, _flip(share)) for i, share in entries]
    ok, decoded = strategy.decode(forged, sender="u", tag="t")
    assert not ok


def test_resolve_strategy_names_and_validation():
    assert isinstance(resolve_strategy("replication", f=2), ReplicationStrategy)
    erasure = resolve_strategy("erasure-coding", d=3, f=2)
    assert erasure.k == 5
    with pytest.raises(ValueError, match="unknown robust strategy"):
        resolve_strategy("raid6")
    with pytest.raises(ValueError, match="params"):
        resolve_strategy(ReplicationStrategy(), f=1)
    with pytest.raises(ValueError):
        ReplicationStrategy(f=-1)
    with pytest.raises(ValueError):
        ErasureCodingStrategy(d=0)


# -- the compiler ------------------------------------------------------------


def test_replica_graph_shape():
    graph = nx.path_graph(4)
    physical = replica_graph(graph, 3)
    assert physical.number_of_nodes() == 12
    # Complete bipartite bundles, no intra-group edges.
    assert physical.number_of_edges() == graph.number_of_edges() * 9
    assert not physical.has_edge((0, 0), (0, 1))
    assert physical.has_edge((0, 0), (1, 2))
    with pytest.raises(ValueError):
        replica_graph(graph, 0)


STRATEGIES = [
    ("replication", {"f": 2}),
    ("erasure-coding", {"d": 2, "f": 2}),
]


def fault_scenarios():
    return [
        CrashStopVertexScenario(max_faulty=2, first_round=1, window=4, seed=3),
        ByzantineVertexScenario(max_faulty=2, seed=3),
    ]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name,params", STRATEGIES, ids=[s for s, _ in STRATEGIES])
def test_compiled_run_recovers_clean_outputs_under_faults(backend, name, params):
    graph = erdos_renyi(24, 5.0, seed=7)
    clean = run_algorithm(graph, FloodMinimum, backend=backend)
    compiled = compile_robust(FloodMinimum, strategy=name, **params)
    for scenario in fault_scenarios():
        run = compiled.run(graph, backend=backend, scenario=scenario)
        assert run.outputs == clean.outputs
        assert run.halted
        assert run.round_stretch is not None and run.round_stretch <= 4.0


def test_bare_run_breaks_where_the_compiled_run_survives():
    graph = erdos_renyi(24, 5.0, seed=7)
    clean = run_algorithm(graph, FloodMinimum, backend="reference")
    scenario = fault_scenarios()[0]
    bare = run_algorithm(
        graph, FloodMinimum, backend="reference", scenario=scenario
    )
    assert bare.outputs != clean.outputs


def test_strategies_trade_bandwidth_for_group_size():
    graph = nx.path_graph(6)
    replication = compile_robust(FloodMinimum, strategy="replication", f=1)
    erasure = compile_robust(FloodMinimum, strategy="erasure-coding", d=2, f=1)
    rep_run = replication.run(graph, backend="reference")
    era_run = erasure.run(graph, backend="reference")
    clean = run_algorithm(graph, FloodMinimum, backend="reference")
    assert rep_run.outputs == clean.outputs == era_run.outputs
    # k=3 full single-word copies per directed replica pair: exactly k^2
    # times the bare word bill, and byte-identical fragmentation timing
    # (stretch 1).  The coded shares pay checksum + framing words on these
    # tiny payloads, so coding trades extra words and a bounded stretch for
    # the smaller group (k = d + f = 3 tolerates the same f with
    # identified, not outvoted, corruption).
    assert rep_run.metrics.words == 9 * clean.metrics.words
    assert rep_run.round_stretch == 1.0
    assert era_run.metrics.words > rep_run.metrics.words
    assert era_run.round_stretch <= 4.0


def test_compiled_stretch_uses_supplied_baseline():
    graph = nx.path_graph(5)
    compiled = compile_robust(FloodMinimum, strategy="replication", f=1)
    run = compiled.run(graph, backend="reference", baseline_rounds=10)
    assert run.round_stretch == run.rounds / 10


def test_vector_algorithm_compiles_via_its_per_vertex_twin():
    from common import vector_broadcast_workload

    graph = erdos_renyi(18, 4.0, seed=2)
    workload = vector_broadcast_workload(payload_words=4)
    clean = run_algorithm(graph, workload, backend="vectorized")
    compiled = compile_robust(workload, strategy="replication", f=1)
    run = compiled.run(
        graph,
        backend="vectorized",
        scenario=CrashStopVertexScenario(max_faulty=1, first_round=1, seed=5),
    )
    assert run.outputs == clean.outputs


# -- the experiment-registry surface -----------------------------------------


def _robust_spec(**workload_params):
    return ExperimentSpec(
        name="robust-cell",
        graph="erdos-renyi",
        graph_params={"n": 18, "avg_degree": 4.0, "seed": 2},
        workload="robust-compiled",
        workload_params={
            "inner": "flood-min",
            "strategy": "replication",
            "f": 1,
            **workload_params,
        },
        backend="reference",
        seeds=(0,),
    )


def test_robust_compiled_workload_runs_through_the_session_api():
    clean_spec = ExperimentSpec(
        name="bare-cell",
        graph="erdos-renyi",
        graph_params={"n": 18, "avg_degree": 4.0, "seed": 2},
        workload="flood-min",
        backend="reference",
        seeds=(0,),
    )
    session = Session(name="robust")
    clean = session.run(clean_spec)
    compiled = next(
        iter(
            session.grid(
                _robust_spec(),
                scenarios=[("crash-vertices", {"max_faulty": 2, "seed": 3})],
            )
        )
    )
    assert compiled.output_digest == clean.output_digest
    assert compiled.round_stretch is not None
    row = compiled.to_row()
    assert row["round_stretch"] == round(compiled.round_stretch, 4)
    # The stretch participates in the content digest (REP007's customer).
    assert "round_stretch" in row


def test_robust_compiled_rejects_driver_inner_workloads():
    session = Session(name="robust-bad")
    with pytest.raises(Exception, match="vertex workloads only"):
        session.run(_robust_spec(inner="distributed-listing"))
