"""Equivalence and contract suite for the vectorized per-vertex layer.

A :class:`~repro.engine.vector.VectorAlgorithm` must be indistinguishable —
outputs, rounds, messages, words, drops — from its ``per_vertex`` twin, on
every backend and under every delivery scenario.  The matrix here compares
three executions of the *same* vector class against the ground truth of
running the scalar twin directly on the reference backend:

* vectorized backend → the array fast path (no per-vertex dispatch at all),
* reference backend  → the adapter shim (twin substituted transparently),
* sharded backend    → the adapter shim across worker shards.

Plus the vector-specific contracts: bulk validation (non-neighbour sends,
halted senders, malformed batches), the per-vertex twin requirement, and
workload-level correctness (BFS distances against networkx, flooding against
the global minimum).
"""

import networkx as nx
import numpy as np
import pytest

from common import (
    VectorFloodMinimum,
    engine_workload_graphs,
    vector_bfs_workload,
    vector_broadcast_workload,
)
from repro.baselines.naive import FloodMinimum
from repro.engine import (
    AdversarialDelayScenario,
    LinkDropScenario,
    VectorAlgorithm,
    VectorSends,
    run_algorithm,
)
from repro.graphs import erdos_renyi

ALL_BACKENDS = ["reference", "vectorized", "sharded"]


def vector_workloads():
    return [
        pytest.param(vector_broadcast_workload(8), id="broadcast"),
        pytest.param(VectorFloodMinimum, id="flood-min"),
        pytest.param(vector_bfs_workload(0), id="bfs-tree"),
    ]


def run_signature(run):
    """The facts the vector layer must reproduce exactly."""
    return {
        "rounds": run.rounds,
        "messages": run.metrics.messages,
        "words": run.metrics.words,
        "dropped": run.metrics.dropped,
        "halted": run.halted,
        "outputs": run.outputs,
        "phase_rounds": dict(run.metrics.phase_rounds),
    }


def workload_graphs():
    return [
        pytest.param(name, graph, id=name)
        for name, graph in engine_workload_graphs()
    ]


@pytest.mark.parametrize("algorithm", vector_workloads())
@pytest.mark.parametrize("graph_name,graph", workload_graphs())
def test_vector_classes_match_scalar_reference(algorithm, graph_name, graph):
    truth = run_signature(
        run_algorithm(
            graph, algorithm.per_vertex, backend="reference", max_rounds=5000
        )
    )
    for backend in ALL_BACKENDS:
        candidate = run_signature(
            run_algorithm(graph, algorithm, backend=backend, max_rounds=5000)
        )
        assert candidate == truth, (
            f"vector class diverged from scalar twin on {graph_name} "
            f"via backend {backend}"
        )


@pytest.mark.parametrize(
    "scenario",
    [
        LinkDropScenario(drop_probability=0.15, seed=21),
        AdversarialDelayScenario(stall_period=4, seed=2),
    ],
    ids=["link-drop", "adversarial-delay"],
)
@pytest.mark.parametrize("algorithm", vector_workloads())
def test_vector_classes_match_scalar_reference_under_faults(algorithm, scenario):
    graph = erdos_renyi(30, 8.0, seed=9)
    truth = run_signature(
        run_algorithm(
            graph,
            algorithm.per_vertex,
            backend="reference",
            scenario=scenario,
            max_rounds=5000,
        )
    )
    for backend in ALL_BACKENDS:
        candidate = run_signature(
            run_algorithm(
                graph, algorithm, backend=backend, scenario=scenario,
                max_rounds=5000,
            )
        )
        assert candidate == truth, (
            f"vector class diverged under {scenario.describe()} on {backend}"
        )


def test_vector_path_agrees_on_self_loops():
    graph = nx.path_graph(4)
    graph.add_edge(0, 0)
    graph.add_edge(2, 2)
    algorithm = vector_broadcast_workload(6)
    truth = run_signature(
        run_algorithm(graph, algorithm.per_vertex, backend="reference",
                      max_rounds=2000)
    )
    for backend in ALL_BACKENDS:
        assert run_signature(
            run_algorithm(graph, algorithm, backend=backend, max_rounds=2000)
        ) == truth


def test_vector_path_agrees_on_truncated_runs():
    """Hitting max_rounds mid-transfer must leave identical partial state."""
    graph = erdos_renyi(20, 8.0, seed=6)
    algorithm = vector_broadcast_workload(16)
    for cap in [2, 5, 9]:
        truth = run_signature(
            run_algorithm(graph, algorithm.per_vertex, backend="reference",
                          max_rounds=cap)
        )
        assert not truth["halted"]
        candidate = run_signature(
            run_algorithm(graph, algorithm, backend="vectorized", max_rounds=cap)
        )
        assert candidate == truth, f"vector path diverged at cap {cap}"


# ---------------------------------------------------------------------------
# Workload-level correctness
# ---------------------------------------------------------------------------


def test_bfs_tree_matches_networkx_distances():
    graph = erdos_renyi(60, 3.0, seed=13)  # sparse: disconnection likely
    run = run_algorithm(
        graph, vector_bfs_workload(0), backend="vectorized", max_rounds=5000
    )
    distances = nx.single_source_shortest_path_length(graph, 0)
    for vertex in graph.nodes:
        if vertex in distances:
            dist, parent = run.outputs[vertex]
            assert dist == distances[vertex]
            if vertex == 0:
                assert parent == 0
            else:
                assert graph.has_edge(parent, vertex)
                assert distances[parent] == dist - 1
        else:
            assert run.outputs[vertex] is None


def test_flood_min_elects_global_minimum_per_component():
    graph = erdos_renyi(40, 6.0, seed=17)
    run = run_algorithm(
        graph, VectorFloodMinimum, backend="vectorized", max_rounds=5000
    )
    for component in nx.connected_components(graph):
        winner = min(component)
        for vertex in component:
            assert run.outputs[vertex] == winner


# ---------------------------------------------------------------------------
# Bulk validation and the per-vertex twin contract
# ---------------------------------------------------------------------------


class _MisbehavingBase(VectorAlgorithm):
    """One-round algorithm whose sends are supplied by the subclass."""

    per_vertex = FloodMinimum  # any twin; only the vector path runs

    def on_round(self, round_index, inbox):
        self.halted[:] = True
        return self.build_sends()


def _run_misbehaving(build):
    graph = nx.path_graph(5)
    algorithm = type(
        "Misbehaving", (_MisbehavingBase,), {"build_sends": build}
    )
    return run_algorithm(graph, algorithm, backend="vectorized", max_rounds=50)


def _sends(senders, receivers, values=None, words=None):
    senders = np.asarray(senders, dtype=np.int64)
    return VectorSends(
        senders=senders,
        receivers=np.asarray(receivers, dtype=np.int64),
        values=np.asarray(
            values if values is not None else np.zeros(senders.size),
            dtype=np.int64,
        ),
        words=np.asarray(
            words if words is not None else np.ones(senders.size),
            dtype=np.int64,
        ),
    )


def test_vector_send_to_non_neighbour_is_rejected():
    with pytest.raises(ValueError, match="non-neighbour"):
        _run_misbehaving(lambda self: _sends([0], [3]))


def test_vector_send_with_out_of_range_ids_is_rejected():
    with pytest.raises(ValueError, match="out of range"):
        _run_misbehaving(lambda self: _sends([0], [7]))


def test_vector_send_with_zero_words_is_rejected():
    with pytest.raises(ValueError, match="at least one word"):
        _run_misbehaving(lambda self: _sends([0], [1], words=[0]))


def test_vector_send_with_mismatched_arrays_is_rejected():
    with pytest.raises(ValueError, match="same length"):
        _run_misbehaving(lambda self: _sends([0, 1], [1, 2], values=[5]))


def test_vector_send_with_short_edge_ids_is_rejected():
    """A caller-supplied edge_ids array must cover every send — a short one
    would otherwise silently truncate the scheduled batch."""

    def build(self):
        sends = _sends([0, 1], [1, 2])
        sends.edge_ids = np.asarray([0], dtype=np.int64)
        return sends

    with pytest.raises(ValueError, match="one entry per send"):
        _run_misbehaving(build)


def test_vector_send_from_halted_vertex_is_rejected():
    class HaltsThenSends(VectorAlgorithm):
        per_vertex = FloodMinimum

        def on_round(self, round_index, inbox):
            if round_index == 0:
                self.halted[0] = True
                return None
            self.halted[:] = True
            # Vertex 0 halted in round 0, so sending from it in round 1 is
            # the vector analogue of forging another vertex's messages.
            return _sends([0], [1])

    with pytest.raises(ValueError, match="halted vertex"):
        run_algorithm(
            nx.path_graph(4), HaltsThenSends, backend="vectorized", max_rounds=50
        )


def test_halt_and_send_in_the_same_round_is_legal():
    """BFS-style halt-then-announce must pass halted-sender validation."""
    run = run_algorithm(
        nx.path_graph(6), vector_bfs_workload(0), backend="vectorized",
        max_rounds=100,
    )
    assert run.halted
    assert run.outputs[5] == (5, 4)


def test_vector_class_without_twin_only_runs_vectorized():
    class NoTwin(VectorAlgorithm):
        def on_round(self, round_index, inbox):
            self.halted[:] = True
            return None

    graph = nx.path_graph(3)
    run = run_algorithm(graph, NoTwin, backend="vectorized", max_rounds=10)
    assert run.halted
    for backend in ["reference", "sharded"]:
        with pytest.raises(TypeError, match="per_vertex twin"):
            run_algorithm(graph, NoTwin, backend=backend, max_rounds=10)


def test_non_integer_vertex_ids_rejected_for_identifier_algorithms():
    graph = nx.Graph()
    graph.add_edge("a", "b")
    with pytest.raises(TypeError, match="integer vertex ids"):
        run_algorithm(graph, VectorFloodMinimum, backend="vectorized")
