"""Adaptive adversaries and the self-healing robust runtime.

Three layers of PR-10 behaviour, pinned independently:

* **Adaptive scenarios** — fault placement as a deterministic function of
  observed traffic: budgets respected, decisions replayable (bind resets),
  policies target what they claim to target, and all three backends agree
  because they feed the adversary identical pre-drop delivery counters.
* **Self-healing runtime** — ``compile_robust(..., heal=True)`` survives
  cumulative fault sequences exceeding the static ``f``: silent seats are
  detected within a window, re-seated from a :class:`RobustState` snapshot
  (traced as ``replica_reseated``), and group votes exclude reported-dead
  replicas.  Static compilation demonstrably breaks on the same schedule.
* **LDC-style local decoding** — ``decode="local"`` reads strictly fewer
  shares on the clean path and falls back to full reconstruction under
  corruption, with bit-identical outputs either way.

The composed-fault property tests (crash overlay link-drop, adaptive
Byzantine overlay bursty) close the loop: compiled executions stay
backend-identical even when vertex faults, adaptive corruption, and link
faults stack in one scenario tree.
"""

from __future__ import annotations

import json

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.congest.vertex import VertexAlgorithm
from repro.engine.runner import run_algorithm
from repro.engine.scenarios import (
    BurstyFaultScenario,
    ComposedScenario,
    LinkDropScenario,
    RoundStats,
)
from repro.experiments import ExperimentSpec
from repro.graphs import erdos_renyi
from repro.obs import RecordingTracer
from repro.robust import (
    AdaptiveByzantineScenario,
    AdaptiveCrashScenario,
    ErasureCodingStrategy,
    RobustState,
    compile_robust,
)
from repro.robust.coding import CodecError
from repro.robust.scenarios import ByzantineVertexScenario

BACKENDS = ["reference", "vectorized", "sharded"]

POLICIES = ["hottest", "cut-critical", "round-robin"]


class PeriodicGossip(VertexAlgorithm):
    """Re-broadcast the best-known label every few rounds until a horizon.

    The healing tests need an inner algorithm that (a) keeps every replica
    group *active* — seat-health detection only convicts silence next to
    talking siblings — and (b) does not saturate edges, so control
    messages (flags, re-seat announcements) arrive while survivors are
    still running.  Periodic re-broadcast is exactly the send pattern of
    self-stabilising protocols, and both properties hold by construction.
    """

    HORIZON = 120
    PERIOD = 4

    def __init__(self, vertex, neighbors, n):
        super().__init__(vertex, neighbors, n)
        self.best = int(vertex)

    def on_round(self, round_index, inbox):
        for message in inbox:
            if message.payload > self.best:
                self.best = message.payload
        if round_index >= self.HORIZON:
            self.output = self.best
            self.halt()
            return []
        if round_index % self.PERIOD == 0:
            return [self.send(u, "max", self.best) for u in self.neighbors]
        return []


def hub_ring_graph(leaves: int = 12) -> nx.Graph:
    """A hub plus a ring of leaves: vertex 0 is unambiguously hottest."""
    graph = nx.Graph()
    for i in range(1, leaves + 1):
        graph.add_edge(0, i)
    for i in range(1, leaves):
        graph.add_edge(i, i + 1)
    return graph


# -- adaptive scenarios ------------------------------------------------------


def test_adaptive_parameters_validated():
    with pytest.raises(ValueError, match="policy"):
        AdaptiveCrashScenario(policy="loudest")
    with pytest.raises(ValueError, match="period"):
        AdaptiveCrashScenario(period=0)
    with pytest.raises(ValueError, match="first_round"):
        AdaptiveCrashScenario(first_round=-1)
    with pytest.raises(ValueError, match="start_round"):
        AdaptiveByzantineScenario(start_round=-1)
    with pytest.raises(ValueError, match="max_faulty"):
        AdaptiveCrashScenario(max_faulty=-1)


@pytest.mark.parametrize("policy", POLICIES)
def test_adaptive_crash_budget_and_monotone_schedule(policy):
    graph = erdos_renyi(24, 4.0, seed=7)
    scenario = AdaptiveCrashScenario(
        max_faulty=3, policy=policy, first_round=1, period=2, seed=11
    )
    run_algorithm(graph, PeriodicGossip, scenario=scenario, max_rounds=300)
    crashes = scenario.crash_rounds()
    assert 1 <= len(crashes) <= 3
    assert all(round_index >= 1 for round_index in crashes.values())
    history = [scenario.faulty_vertices(r) for r in range(0, 40, 5)]
    for earlier, later in zip(history, history[1:]):
        assert earlier <= later


def test_adaptive_scenario_replays_identically_across_runs():
    graph = erdos_renyi(20, 4.0, seed=3)
    scenario = AdaptiveCrashScenario(max_faulty=2, period=3, seed=5)
    first = run_algorithm(
        graph, PeriodicGossip, scenario=scenario, max_rounds=300
    )
    schedule = scenario.crash_rounds()
    second = run_algorithm(
        graph, PeriodicGossip, scenario=scenario, max_rounds=300
    )
    assert scenario.crash_rounds() == schedule  # bind_nodes resets state
    assert second.outputs == first.outputs
    assert second.rounds == first.rounds


def test_hottest_policy_targets_the_hub():
    graph = hub_ring_graph()
    scenario = AdaptiveCrashScenario(
        max_faulty=1, policy="hottest", first_round=3, period=4, seed=0
    )
    run_algorithm(graph, PeriodicGossip, scenario=scenario, max_rounds=300)
    assert set(scenario.crash_rounds()) == {0}


def test_round_robin_policy_spreads_decisions():
    graph = hub_ring_graph()
    scenario = AdaptiveCrashScenario(
        max_faulty=4, policy="round-robin", first_round=3, period=4, seed=0
    )
    run_algorithm(graph, PeriodicGossip, scenario=scenario, max_rounds=300)
    assert len(scenario.crash_rounds()) == 4  # four distinct victims


def test_adaptive_byzantine_retargets_but_never_crashes():
    graph = hub_ring_graph()
    scenario = AdaptiveByzantineScenario(
        max_faulty=2, policy="cut-critical", start_round=2, period=5, seed=1
    )
    run = run_algorithm(
        graph, PeriodicGossip, scenario=scenario, max_rounds=300
    )
    assert scenario.faulty_vertices(50) == frozenset()
    assert len(scenario.byzantine_vertices(50)) == 2
    clean = run_algorithm(graph, PeriodicGossip, max_rounds=300)
    assert run.rounds == clean.rounds  # corruption never reschedules words


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize(
    "builder",
    [
        lambda policy: AdaptiveCrashScenario(
            max_faulty=3, policy=policy, first_round=1, period=3, seed=9
        ),
        lambda policy: AdaptiveByzantineScenario(
            max_faulty=3, policy=policy, start_round=1, period=3, seed=9
        ),
    ],
    ids=["adaptive-crash", "adaptive-byzantine"],
)
def test_adaptive_scenarios_agree_across_backends(builder, policy):
    graph = erdos_renyi(22, 4.0, seed=2)
    runs = {
        backend: run_algorithm(
            graph,
            PeriodicGossip,
            backend=backend,
            scenario=builder(policy),
            max_rounds=300,
        )
        for backend in BACKENDS
    }
    base = runs["reference"]
    for backend, run in runs.items():
        assert run.rounds == base.rounds, backend
        assert run.outputs == base.outputs, backend
        assert run.metrics.words == base.metrics.words, backend
        assert run.metrics.dropped == base.metrics.dropped, backend


def test_adaptive_spec_params_round_trip_through_experiment_json():
    spec = ExperimentSpec(
        name="adaptive-roundtrip",
        graph_params={"n": 16, "avg_degree": 4.0, "seed": 0},
        workload="flood-min",
        scenario="adaptive-crash",
        scenario_params={
            "max_faulty": 2, "policy": "cut-critical", "period": 7, "seed": 3,
        },
    )
    restored = ExperimentSpec.from_json(json.loads(json.dumps(spec.to_json())))
    assert restored.to_json() == spec.to_json()
    concrete = AdaptiveCrashScenario(**restored.scenario_params)
    assert concrete.policy == "cut-critical"
    # spec_params itself round-trips: rebuild from the instance's own params.
    rebuilt = AdaptiveCrashScenario(**concrete.spec_params())
    assert rebuilt.spec_params() == concrete.spec_params()
    assert json.dumps(concrete.spec_params())  # JSON-safe (REP008)
    assert type(concrete).is_adaptive is True


def test_observe_round_accumulates_pre_drop_deliveries():
    scenario = AdaptiveCrashScenario(max_faulty=1, policy="hottest", seed=0)
    scenario.bind_nodes(["a", "b", "c"])
    import numpy as np

    scenario.observe_round(RoundStats(0, np.array([0, 5, 1], dtype=np.int64)))
    scenario.observe_round(RoundStats(1, np.array([0, 2, 0], dtype=np.int64)))
    assert scenario._pick_targets(1, set()) == [1]  # b is hottest


# -- the self-healing runtime ------------------------------------------------


def adaptive_assault(budget=3):
    # Cumulative budget beyond the static f=1, but below the replica count
    # k=3 — a group that loses *every* seat is unrecoverable by design.
    return AdaptiveCrashScenario(
        max_faulty=budget, policy="hottest", first_round=2, period=20, seed=2
    )


@pytest.mark.parametrize(
    "strategy,params,budget",
    [
        ("replication", {"f": 1}, 2),
        ("erasure-coding", {"d": 2, "f": 1}, 3),
    ],
)
def test_heal_recovers_where_static_compilation_breaks(
    strategy, params, budget
):
    graph = hub_ring_graph()
    clean = run_algorithm(graph, PeriodicGossip, max_rounds=3000)

    static = compile_robust(PeriodicGossip, strategy=strategy, **params)
    static_run = static.run(
        graph, backend="vectorized", scenario=adaptive_assault(budget),
        max_rounds=3000,
    )
    assert static_run.outputs != clean.outputs  # budget > static f=1
    assert static_run.reseats is None

    tracer = RecordingTracer()
    healed = compile_robust(
        PeriodicGossip, strategy=strategy, heal=True, heal_window=3, **params
    )
    healed_run = healed.run(
        graph, backend="vectorized", scenario=adaptive_assault(budget),
        max_rounds=3000, tracer=tracer,
    )
    assert healed_run.outputs == clean.outputs
    assert healed_run.reseats >= 1
    events = [e for e in tracer.events if e["kind"] == "replica_reseated"]
    assert len(events) == healed_run.reseats
    for event in events:
        seated_by = event["seated_by"]
        vertex = event["vertex"]
        assert seated_by[0] == vertex[0]  # an adopter covers its own group
        assert seated_by[1] != vertex[1]
    assert healed_run.round_stretch >= 1.0


def test_heal_is_backend_identical():
    graph = hub_ring_graph()
    runs = {}
    for backend in BACKENDS:
        compiled = compile_robust(
            PeriodicGossip, strategy="erasure-coding", d=2, f=1,
            heal=True, heal_window=3,
        )
        run = compiled.run(
            graph, backend=backend, scenario=adaptive_assault(),
            max_rounds=3000,
        )
        runs[backend] = (run.rounds, run.outputs, run.reseats)
    assert runs["vectorized"] == runs["reference"]
    assert runs["sharded"] == runs["reference"]
    assert runs["reference"][2] >= 1


def test_heal_is_a_noop_on_clean_runs():
    graph = hub_ring_graph(leaves=6)
    clean = run_algorithm(graph, PeriodicGossip, max_rounds=3000)
    compiled = compile_robust(
        PeriodicGossip, strategy="replication", f=1, heal=True
    )
    run = compiled.run(graph, backend="vectorized", max_rounds=3000)
    assert run.outputs == clean.outputs
    assert run.reseats == 0


def test_heal_window_validated():
    with pytest.raises(ValueError, match="heal_window"):
        compile_robust(
            PeriodicGossip, strategy="replication", f=1,
            heal=True, heal_window=0,
        )


def test_robust_state_snapshot_round_trips():
    inner = PeriodicGossip(4, [1, 2], 8)
    inner.best = 77
    snapshot = RobustState.capture(inner)
    symbols = snapshot.encode()
    restored = RobustState.decode(symbols).restore(PeriodicGossip, [1, 2], 8)
    assert restored.vertex == 4
    assert restored.best == 77
    assert not restored.halted
    # Restoration deep-copies: mutating the clone leaves the snapshot alone.
    restored.best = 0
    assert RobustState.decode(symbols).state["best"] == 77


def test_robust_state_rejects_corrupt_and_foreign_payloads():
    snapshot = tuple(RobustState.capture(PeriodicGossip(1, [0], 4)).encode())
    corrupted = (snapshot[0] ^ 0x1F1F,) + snapshot[1:]
    with pytest.raises(CodecError):
        RobustState.decode(corrupted)
    from repro.robust.coding import encode_payload

    with pytest.raises(CodecError, match="RobustState"):
        RobustState.decode(encode_payload(("not-a-state", 1, {})))


# -- LDC-style local decoding ------------------------------------------------


def test_local_decode_reads_strictly_fewer_shares_on_the_clean_path():
    graph = hub_ring_graph(leaves=8)
    results = {}
    for mode in ("full", "local"):
        strategy = ErasureCodingStrategy(d=2, f=2, decode=mode)
        compiled = compile_robust(PeriodicGossip, strategy=strategy)
        run = compiled.run(graph, backend="vectorized", max_rounds=3000)
        results[mode] = (
            run.rounds, run.outputs, strategy.share_reads,
            strategy.decode_calls,
        )
    full, local = results["full"], results["local"]
    assert local[0] == full[0] and local[1] == full[1]
    assert local[3] == full[3]  # same number of logical decodes ...
    assert local[2] < full[2]  # ... examining strictly fewer shares


def test_local_decode_falls_back_under_byzantine_corruption():
    graph = hub_ring_graph(leaves=8)
    outputs = {}
    for mode in ("full", "local"):
        compiled = compile_robust(
            PeriodicGossip,
            strategy=ErasureCodingStrategy(d=2, f=2, decode=mode),
        )
        run = compiled.run(
            graph,
            backend="vectorized",
            scenario=ByzantineVertexScenario(max_faulty=2, seed=3),
            max_rounds=3000,
        )
        outputs[mode] = (run.rounds, run.outputs)
    assert outputs["local"] == outputs["full"]


def test_local_decode_mode_validated_and_content_addressed():
    with pytest.raises(ValueError, match="decode"):
        ErasureCodingStrategy(decode="eager")
    assert "decode" not in ErasureCodingStrategy(d=2, f=1).spec_params()
    assert (
        ErasureCodingStrategy(d=2, f=1, decode="local").spec_params()["decode"]
        == "local"
    )


# -- composed faults through the compiler ------------------------------------


@given(seed=st.integers(min_value=0, max_value=2**20))
@settings(max_examples=4, deadline=None)
def test_compiled_run_is_backend_identical_under_crash_plus_link_drop(seed):
    graph = erdos_renyi(10, 3.0, seed=4)
    def scenario():
        return ComposedScenario.overlay(
            AdaptiveCrashScenario(max_faulty=1, period=5, seed=seed),
            LinkDropScenario(drop_probability=0.15, seed=seed),
        )
    runs = {}
    for backend in BACKENDS:
        compiled = compile_robust(PeriodicGossip, strategy="replication", f=1)
        run = compiled.run(
            graph, backend=backend, scenario=scenario(), max_rounds=3000
        )
        runs[backend] = (run.rounds, run.outputs)
    assert runs["vectorized"] == runs["reference"]
    assert runs["sharded"] == runs["reference"]


@given(seed=st.integers(min_value=0, max_value=2**20))
@settings(max_examples=4, deadline=None)
def test_compiled_run_is_backend_identical_under_adaptive_byzantine_bursty(
    seed,
):
    graph = erdos_renyi(10, 3.0, seed=8)
    def scenario():
        return ComposedScenario.overlay(
            AdaptiveByzantineScenario(max_faulty=2, period=4, seed=seed),
            BurstyFaultScenario(burst_probability=0.2, seed=seed),
        )
    runs = {}
    for backend in BACKENDS:
        compiled = compile_robust(
            PeriodicGossip, strategy="erasure-coding", d=2, f=1
        )
        run = compiled.run(
            graph, backend=backend, scenario=scenario(), max_rounds=3000
        )
        runs[backend] = (run.rounds, run.outputs)
    assert runs["vectorized"] == runs["reference"]
    assert runs["sharded"] == runs["reference"]
