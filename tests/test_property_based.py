"""Property-based tests (hypothesis) of the core data structures and invariants."""

import math

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.congest.message import words_for_payload
from repro.graphs.cliques import canonical_clique, enumerate_cliques
from repro.listing import list_triangles
from repro.partition_trees.parts import Partition
from repro.streaming.chains import build_vertex_chain
from repro.streaming.stream import MainToken, Stream


# ---------------------------------------------------------------------------
# Graph strategies
# ---------------------------------------------------------------------------


@st.composite
def small_graphs(draw, max_vertices=14):
    n = draw(st.integers(min_value=3, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    mask = draw(st.lists(st.booleans(), min_size=len(possible), max_size=len(possible)))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edge for edge, keep in zip(possible, mask) if keep)
    return graph


# ---------------------------------------------------------------------------
# Clique enumeration invariants
# ---------------------------------------------------------------------------


@given(small_graphs())
@settings(max_examples=40, deadline=None)
def test_enumerated_cliques_are_cliques_and_canonical(graph):
    for clique in enumerate_cliques(graph, 3):
        assert clique == canonical_clique(clique)
        assert all(graph.has_edge(u, v) for u in clique for v in clique if u < v)


@given(small_graphs())
@settings(max_examples=40, deadline=None)
def test_triangle_count_matches_networkx(graph):
    assert len(enumerate_cliques(graph, 3)) == sum(nx.triangles(graph).values()) // 3


@given(small_graphs())
@settings(max_examples=30, deadline=None)
def test_k4_is_subset_closed_over_k3(graph):
    """Every K4 contains four K3s, all of which must be enumerated."""
    triangles = enumerate_cliques(graph, 3)
    for clique in enumerate_cliques(graph, 4):
        members = list(clique)
        for skip in range(4):
            sub = tuple(sorted(members[:skip] + members[skip + 1 :]))
            assert sub in triangles


# ---------------------------------------------------------------------------
# The headline invariant: the deterministic listing is exactly correct
# ---------------------------------------------------------------------------


@given(small_graphs())
@settings(max_examples=25, deadline=None)
def test_triangle_listing_matches_ground_truth(graph):
    result = list_triangles(graph)
    assert result.cliques == enumerate_cliques(graph, 3)


# ---------------------------------------------------------------------------
# Vertex chains
# ---------------------------------------------------------------------------


@given(
    st.sets(st.integers(min_value=0, max_value=500), min_size=1, max_size=60),
    st.integers(min_value=1, max_value=20),
)
@settings(max_examples=60, deadline=None)
def test_vertex_chain_blocks_partition_the_universe(universe, beta):
    chain = build_vertex_chain(sorted(universe), beta)
    covered = []
    for position in range(1, len(chain) + 1):
        block = chain.block(position)
        assert len(block) <= beta
        covered.extend(block)
    assert sorted(covered) == sorted(universe)
    for vertex in universe:
        owner = chain.responsible_for(vertex)
        assert vertex in chain.block(chain.members.index(owner) + 1)


# ---------------------------------------------------------------------------
# Partitions from boundaries
# ---------------------------------------------------------------------------


@given(
    st.sets(st.integers(min_value=0, max_value=300), min_size=2, max_size=50),
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_partition_from_boundaries_always_covers(universe, data):
    ordered = sorted(universe)
    cut_count = data.draw(st.integers(min_value=0, max_value=len(ordered) - 1))
    cuts = sorted(data.draw(
        st.sets(st.integers(min_value=1, max_value=len(ordered) - 1),
                min_size=cut_count, max_size=cut_count)
    )) if len(ordered) > 1 else []
    boundaries = []
    start = 0
    for cut in cuts + [len(ordered)]:
        boundaries.append((ordered[start], ordered[cut - 1]))
        start = cut
    partition = Partition.from_boundaries(ordered, boundaries)
    assert partition.covers_universe()
    for vertex in ordered:
        index = partition.part_containing(vertex)
        assert partition[index].contains(vertex)


# ---------------------------------------------------------------------------
# Streams
# ---------------------------------------------------------------------------


@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=0, max_size=40))
@settings(max_examples=60, deadline=None)
def test_stream_read_preserves_order_and_counts(values):
    tokens = [MainToken(index=i, owner=i, summary=v) for i, v in enumerate(values)]
    stream = Stream(tokens)
    seen = []
    while True:
        token = stream.read()
        if token is None:
            break
        seen.append(token.summary)
    assert seen == values
    assert stream.log.main_reads == len(values)


# ---------------------------------------------------------------------------
# Message sizing
# ---------------------------------------------------------------------------


@given(st.lists(st.integers(), min_size=0, max_size=50), st.integers(min_value=2, max_value=10**6))
@settings(max_examples=60, deadline=None)
def test_payload_words_monotone_in_length(items, n):
    shorter = words_for_payload(tuple(items[: len(items) // 2]), n)
    longer = words_for_payload(tuple(items), n)
    assert longer >= shorter
    assert longer == 1 + len(items)
