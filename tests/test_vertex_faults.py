"""Vertex-fault scenarios: determinism, backend equivalence, drop accounting.

The crash-stop / Byzantine scenarios (``repro.robust.scenarios``) extend the
delivery-scenario contract with a *vertex*-fault axis, and every backend
threads it independently (the reference simulator's run loop, the vectorized
per-vertex loop, the vector fast path's array filters, the sharded parent +
shard workers).  Three contracts pin the layer:

1. **Seed determinism** — every fault decision is a pure function of
   ``(seed, vertex, round)``: rebinding a freshly constructed scenario must
   reproduce the identical crash schedule / corruption masks, because forked
   shard workers rely on exactly that to agree with their parent.
2. **Backend equivalence** — the same workload under the same vertex-fault
   scenario must produce identical rounds / outputs / word totals / drop
   counts on reference, vectorized, and sharded backends (and on the vector
   fast path via the scalar twin).
3. **Drop accounting** — words a crashed vertex queued before dying still
   cross (bandwidth was spent) but the message is discarded on arrival and
   counted in ``CongestMetrics.dropped``, mirroring the halted-receiver rule.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from common import vector_broadcast_workload
from repro.congest.vertex import VertexAlgorithm
from repro.engine.registry import scenario_registry
from repro.engine.runner import run_algorithm
from repro.engine.scenarios import ComposedScenario, resolve_scenario
from repro.experiments import ExperimentSpec
from repro.graphs import erdos_renyi
from repro.obs import RecordingTracer
from repro.robust.scenarios import ByzantineVertexScenario, CrashStopVertexScenario

BACKENDS = ["reference", "vectorized", "sharded"]

seeds = st.integers(min_value=0, max_value=2**31)


def crash_scenario(seed=0, max_faulty=2, first_round=1, window=5):
    return CrashStopVertexScenario(
        max_faulty=max_faulty, first_round=first_round, window=window, seed=seed
    )


def byzantine_scenario(seed=0, max_faulty=2, start_round=0):
    return ByzantineVertexScenario(
        max_faulty=max_faulty, start_round=start_round, seed=seed
    )


class FloodMax(VertexAlgorithm):
    """Flood the maximum vertex label: breaks under Byzantine corruption.

    (Flood-*min* over non-negative labels survives value corruption —
    a 31-bit XOR mask cannot forge below 0 — so the Byzantine divergence
    tests flood the maximum instead, which a corrupted word *can* exceed.)
    """

    def __init__(self, vertex, neighbors, n):
        super().__init__(vertex, neighbors, n)
        self.best = int(vertex)
        self.rounds_quiet = 0

    def on_round(self, round_index, inbox):
        improved = False
        for message in inbox:
            if message.payload > self.best:
                self.best = message.payload
                improved = True
        if round_index == 0 or improved:
            self.rounds_quiet = 0
            return [
                self.send(neighbor, "max", self.best)
                for neighbor in self.neighbors
            ]
        self.rounds_quiet += 1
        if self.rounds_quiet >= 2:
            self.output = self.best
            self.halt()
        return []


# -- 1. seed determinism -----------------------------------------------------


@given(seed=seeds, n=st.integers(min_value=4, max_value=40),
       budget=st.integers(min_value=0, max_value=6))
@settings(max_examples=60, deadline=None)
def test_crash_schedule_is_a_pure_function_of_seed(seed, n, budget):
    nodes = list(range(n))
    first = crash_scenario(seed=seed, max_faulty=budget)
    second = crash_scenario(seed=seed, max_faulty=budget)
    first.bind_nodes(nodes)
    second.bind_nodes(list(reversed(nodes)))  # binding order must not matter
    assert first.crash_rounds() == second.crash_rounds()
    assert len(first.crash_rounds()) == min(budget, n)
    for round_index in range(12):
        assert first.faulty_vertices(round_index) == second.faulty_vertices(
            round_index
        )
    # Crash sets are monotone in time.
    history = [first.faulty_vertices(r) for r in range(12)]
    for earlier, later in zip(history, history[1:]):
        assert earlier <= later


@given(seed=seeds, n=st.integers(min_value=4, max_value=40))
@settings(max_examples=60, deadline=None)
def test_byzantine_corruption_is_deterministic_and_shape_preserving(seed, n):
    nodes = list(range(n))
    first = byzantine_scenario(seed=seed)
    second = byzantine_scenario(seed=seed)
    first.bind_nodes(nodes)
    second.bind_nodes(list(reversed(nodes)))
    assert first.byzantine_vertices() == second.byzantine_vertices()
    assert first.faulty_vertices(5) == frozenset()  # liars never crash
    liar = min(first.byzantine_vertices(), default=None)
    if liar is None:
        return
    payload = (7, [1, 2], "tag", None, True)
    out1 = first.corrupt_payload(liar, (liar + 1) % n, 3, payload)
    out2 = second.corrupt_payload(liar, (liar + 1) % n, 3, payload)
    assert out1 == out2
    # Ints flip (mask has the low bit forced), everything else is untouched.
    assert out1[0] != 7 and type(out1[0]) is int
    assert out1[1] != [1, 2] and out1[2] == "tag"
    assert out1[3] is None and out1[4] is True
    # Non-faulty senders and pre-start rounds pass through unchanged.
    honest = next(v for v in nodes if v not in first.byzantine_vertices())
    assert first.corrupt_payload(honest, liar, 3, payload) is payload
    early = byzantine_scenario(seed=seed, start_round=10)
    early.bind_nodes(nodes)
    assert early.corrupt_payload(liar, honest, 3, payload) is payload


@given(seed=seeds, n=st.integers(min_value=4, max_value=30),
       round_index=st.integers(min_value=0, max_value=20), data=st.data())
@settings(max_examples=60, deadline=None)
def test_batch_corrupt_values_matches_scalar_corrupt_payload(
    seed, n, round_index, data
):
    scenario = byzantine_scenario(seed=seed, max_faulty=n // 2)
    nodes = list(range(n))
    scenario.bind_nodes(nodes)
    count = data.draw(st.integers(min_value=1, max_value=24))
    senders = np.asarray(
        data.draw(st.lists(st.integers(0, n - 1), min_size=count, max_size=count))
    )
    receivers = np.asarray(
        data.draw(st.lists(st.integers(0, n - 1), min_size=count, max_size=count))
    )
    values = np.asarray(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=2**31 - 1),
                min_size=count, max_size=count,
            )
        ),
        dtype=np.int64,
    )
    batch = scenario.corrupt_values(senders, receivers, round_index, values)
    expected = [
        scenario.corrupt_payload(int(s), int(r), round_index, int(v))
        for s, r, v in zip(senders, receivers, values)
    ]
    assert batch.tolist() == expected


# -- 2. backend equivalence --------------------------------------------------


def run_matrix(factory, graph, scenario_builder):
    runs = {
        backend: run_algorithm(
            graph, factory, backend=backend, scenario=scenario_builder()
        )
        for backend in BACKENDS
    }
    base = runs["reference"]
    for backend, run in runs.items():
        assert run.rounds == base.rounds, backend
        assert run.outputs == base.outputs, backend
        assert run.metrics.words == base.metrics.words, backend
        assert run.metrics.messages == base.metrics.messages, backend
        assert run.metrics.dropped == base.metrics.dropped, backend
        assert run.halted == base.halted, backend
    return base


@pytest.mark.parametrize("builder", [crash_scenario, byzantine_scenario])
def test_flood_agrees_across_backends_under_vertex_faults(builder):
    graph = erdos_renyi(36, 6.0, seed=13)
    run_matrix(FloodMax, graph, builder)


@pytest.mark.parametrize("builder", [crash_scenario, byzantine_scenario])
def test_vector_fast_path_agrees_with_scalar_twin(builder):
    graph = erdos_renyi(30, 5.0, seed=5)
    workload = vector_broadcast_workload(payload_words=6)
    vector = run_algorithm(
        graph, workload, backend="vectorized", scenario=builder()
    )
    scalar = run_algorithm(
        graph, workload.per_vertex, backend="reference", scenario=builder()
    )
    assert vector.rounds == scalar.rounds
    assert vector.outputs == scalar.outputs
    assert vector.metrics.words == scalar.metrics.words
    assert vector.metrics.dropped == scalar.metrics.dropped


def test_crash_breaks_flood_but_byzantine_only_lies():
    graph = erdos_renyi(36, 6.0, seed=13)
    clean = run_algorithm(graph, FloodMax, backend="reference")
    crashed = run_algorithm(
        graph, FloodMax, backend="reference", scenario=crash_scenario()
    )
    lied = run_algorithm(
        graph, FloodMax, backend="reference", scenario=byzantine_scenario()
    )
    assert clean.outputs != crashed.outputs
    assert clean.outputs != lied.outputs
    # A crashed vertex's output freezes at its pre-crash state; a Byzantine
    # run has every vertex still reporting, just with corrupted values.
    assert set(lied.outputs) == set(clean.outputs)


# -- 3. drop accounting ------------------------------------------------------


class BlobThenListen(VertexAlgorithm):
    """Round 0: every vertex broadcasts a multi-word blob, then listens.

    With a crash window that kills a vertex *after* round 0, the dead
    sender's queued fragments are still in flight — the regression shape
    for crashed-endpoint drop accounting.
    """

    def __init__(self, vertex, neighbors, n):
        super().__init__(vertex, neighbors, n)
        self._seen: set = set()

    def on_round(self, round_index, inbox):
        for message in inbox:
            self._seen.add(message.sender)
        if round_index == 0:
            blob = tuple(range(8))
            return [self.send(v, "blob", blob) for v in self.neighbors]
        if round_index >= 12:
            self.output = len(self._seen)
            self.halt()
        return []


@pytest.mark.parametrize("backend", BACKENDS)
def test_crashed_vertex_in_flight_words_are_dropped_and_counted(backend):
    graph = nx.complete_graph(6)
    scenario = CrashStopVertexScenario(
        max_faulty=2, first_round=2, window=1, seed=3
    )
    run = run_algorithm(graph, BlobThenListen, backend=backend, scenario=scenario)
    clean = run_algorithm(graph, BlobThenListen, backend=backend)
    # Bandwidth was spent on the dead senders' queued fragments...
    assert run.metrics.words == clean.metrics.words
    # ...but the completed messages were discarded at delivery.
    assert run.metrics.dropped > 0
    probe = CrashStopVertexScenario(max_faulty=2, first_round=2, window=1, seed=3)
    probe.bind_nodes(list(graph.nodes))
    crashed = set(probe.crash_rounds())
    # 9-word blobs complete at round 9; both crashes fire at round 2, so
    # every blob with a crashed endpoint is dropped: the 2*4 directed pairs
    # between live and crashed vertices (both directions) plus the
    # crashed-to-crashed pair in both directions.
    survivors = set(graph.nodes) - crashed
    assert run.metrics.dropped == 2 * len(crashed) * len(survivors) + 2
    for v in survivors:
        # Survivors still count each other's blobs; only the crashed
        # senders' blobs vanished from their inboxes.
        assert run.outputs[v] == len(survivors) - 1


def test_reference_and_sharded_agree_on_drop_counts_under_crashes():
    graph = erdos_renyi(24, 5.0, seed=9)
    runs = {
        backend: run_algorithm(
            graph,
            BlobThenListen,
            backend=backend,
            scenario=CrashStopVertexScenario(
                max_faulty=3, first_round=1, window=4, seed=7
            ),
        )
        for backend in BACKENDS
    }
    base = runs["reference"]
    assert base.metrics.dropped > 0
    for backend, run in runs.items():
        assert run.metrics.dropped == base.metrics.dropped, backend
        assert run.outputs == base.outputs, backend


# -- tracer events, registry, composition ------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_tracer_sees_crashes_and_corruptions(backend):
    graph = erdos_renyi(20, 4.0, seed=1)
    scenario = ComposedScenario.overlay(
        crash_scenario(seed=2, max_faulty=1), byzantine_scenario(seed=2)
    )
    tracer = RecordingTracer()
    run_algorithm(
        graph, FloodMax, backend=backend, scenario=scenario, tracer=tracer
    )
    crashes = tracer.events_of("vertex_crashed")
    assert len(crashes) == 1
    probe = crash_scenario(seed=2, max_faulty=1)
    probe.bind_nodes(list(graph.nodes))
    ((vertex, round_index),) = probe.crash_rounds().items()
    assert crashes[0]["vertex"] == vertex
    assert crashes[0]["round"] == round_index
    corrupted = tracer.events_of("payload_corrupted")
    assert corrupted and all(event["count"] >= 1 for event in corrupted)


def test_vertex_fault_scenarios_resolve_lazily_from_the_registry():
    assert "crash-vertices" in scenario_registry
    assert "byzantine-vertices" in scenario_registry
    scenario = resolve_scenario("crash-vertices")
    assert isinstance(scenario, CrashStopVertexScenario)
    assert not scenario.has_link_faults and scenario.has_vertex_faults


def test_spec_params_round_trip_through_experiment_json():
    spec = ExperimentSpec(
        name="faults",
        graph="erdos-renyi",
        graph_params={"n": 16, "avg_degree": 4.0, "seed": 1},
        workload="flood-min",
        scenario="crash-vertices",
        scenario_params={"max_faulty": 2, "first_round": 1, "window": 3, "seed": 5},
    )
    restored = ExperimentSpec.from_json(spec.to_json())
    assert restored.to_json() == spec.to_json()
    original = crash_scenario(seed=5, max_faulty=2, first_round=1, window=3)
    rebuilt = type(original)(**original.spec_params())
    nodes = list(range(16))
    original.bind_nodes(nodes)
    rebuilt.bind_nodes(nodes)
    assert original.crash_rounds() == rebuilt.crash_rounds()


def test_composed_overlay_propagates_vertex_fault_flags():
    composed = ComposedScenario.overlay("clean", crash_scenario())
    assert composed.has_vertex_faults
    assert not composed.has_link_faults
    composed.bind_nodes(list(range(10)))
    probe = crash_scenario()
    probe.bind_nodes(list(range(10)))
    assert composed.faulty_vertices(30) == probe.faulty_vertices(30)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError, match="max_faulty"):
        CrashStopVertexScenario(max_faulty=-1)
    with pytest.raises(ValueError, match="fraction"):
        CrashStopVertexScenario(fraction=1.5)
    with pytest.raises(ValueError, match="window"):
        CrashStopVertexScenario(window=0)
    with pytest.raises(ValueError, match="start_round"):
        ByzantineVertexScenario(start_round=-1)
    with pytest.raises(RuntimeError, match="bind_nodes"):
        ByzantineVertexScenario().byzantine_vertices()
