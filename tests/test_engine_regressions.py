"""Engine regression tests: sharded inline fallback, scenario determinism.

Two regressions the equivalence matrix does not pin down directly:

* the sharded backend silently falls back to in-process shards when only
  one worker is requested or the configured start method is unavailable on
  the host — both paths must stay bit-for-bit equivalent to the reference
  simulator;
* delivery scenarios are pure functions of ``(seed, edge, round)``, so a
  faulty run repeated with the same seed must reproduce the identical
  execution on every backend — this is what makes fault experiments
  reproducible at all.
"""

import multiprocessing

import networkx as nx
import pytest

from common import broadcast_workload
from repro.engine import (
    AdversarialDelayScenario,
    LinkDropScenario,
    ShardedBackend,
    run_algorithm,
)
from repro.graphs import erdos_renyi
from repro.listing import list_triangles_distributed


def run_signature(run):
    return {
        "rounds": run.rounds,
        "messages": run.metrics.messages,
        "words": run.metrics.words,
        "halted": run.halted,
        "outputs": run.outputs,
        "combined": run.combined_output(),
    }


# ---------------------------------------------------------------------------
# Sharded inline fallback
# ---------------------------------------------------------------------------


def test_sharded_single_worker_runs_inline_and_matches_reference():
    graph = erdos_renyi(24, 6.0, seed=4)
    factory = broadcast_workload(12)
    reference = run_signature(
        run_algorithm(graph, factory, backend="reference", max_rounds=2000)
    )
    inline = run_signature(
        run_algorithm(
            graph, factory, backend=ShardedBackend(num_workers=1), max_rounds=2000
        )
    )
    assert inline == reference


def test_sharded_unavailable_start_method_falls_back_inline():
    """An unknown start method must degrade to inline shards, not crash."""
    graph = erdos_renyi(24, 6.0, seed=4)
    factory = broadcast_workload(12)
    assert "no-such-method" not in multiprocessing.get_all_start_methods()
    backend = ShardedBackend(num_workers=3, start_method="no-such-method")
    reference = run_signature(
        run_algorithm(graph, factory, backend="reference", max_rounds=2000)
    )
    inline = run_signature(
        run_algorithm(graph, factory, backend=backend, max_rounds=2000)
    )
    assert inline == reference


def test_sharded_inline_multi_shard_under_faults_matches_reference():
    """The inline path must also replay scenario decisions identically."""
    graph = erdos_renyi(20, 5.0, seed=8)
    factory = broadcast_workload(8)
    scenario = LinkDropScenario(drop_probability=0.2, seed=5)
    reference = run_signature(
        run_algorithm(
            graph, factory, backend="reference", scenario=scenario, max_rounds=5000
        )
    )
    backend = ShardedBackend(num_workers=4, start_method="no-such-method")
    inline = run_signature(
        run_algorithm(
            graph, factory, backend=backend, scenario=scenario, max_rounds=5000
        )
    )
    assert inline == reference


# ---------------------------------------------------------------------------
# Scenario determinism
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["reference", "vectorized", "sharded"])
def test_link_drop_same_seed_reproduces_identical_runs(backend):
    graph = erdos_renyi(25, 6.0, seed=6)
    factory = broadcast_workload(10)
    signatures = [
        run_signature(
            run_algorithm(
                graph,
                factory,
                backend=backend,
                scenario=LinkDropScenario(drop_probability=0.15, seed=42),
                max_rounds=5000,
            )
        )
        for _ in range(3)
    ]
    assert signatures[0] == signatures[1] == signatures[2]


def test_link_drop_seed_changes_the_schedule():
    """Different seeds must produce genuinely different fault schedules."""
    scenario_a = LinkDropScenario(drop_probability=0.5, seed=1)
    scenario_b = LinkDropScenario(drop_probability=0.5, seed=2)
    edges = [((u, v), r) for u in range(6) for v in range(6) if u != v for r in range(20)]
    decisions_a = [scenario_a.transmits(e, r) for e, r in edges]
    decisions_b = [scenario_b.transmits(e, r) for e, r in edges]
    assert decisions_a != decisions_b


def test_distributed_listing_deterministic_under_link_drop():
    """The full distributed pipeline is repeatable under a seeded fault model."""
    graph = erdos_renyi(30, 6.0, seed=9)
    runs = [
        list_triangles_distributed(
            graph,
            backend="vectorized",
            scenario=LinkDropScenario(drop_probability=0.1, seed=7),
        )
        for _ in range(2)
    ]
    assert runs[0].cliques == runs[1].cliques
    assert runs[0].measured_rounds == runs[1].measured_rounds
    assert runs[0].measured_words == runs[1].measured_words
    assert [e.rounds for e in runs[0].executions] == [
        e.rounds for e in runs[1].executions
    ]


def test_adversarial_delay_same_seed_reproduces_identical_runs():
    graph = erdos_renyi(25, 6.0, seed=6)
    factory = broadcast_workload(10)
    scenario = AdversarialDelayScenario(stall_period=4, seed=11)
    first = run_signature(
        run_algorithm(graph, factory, backend="vectorized", scenario=scenario)
    )
    # A fresh scenario object with the same seed must replay identically
    # (the stall phases are derived from the seed, not from object state).
    second = run_signature(
        run_algorithm(
            graph,
            factory,
            backend="vectorized",
            scenario=AdversarialDelayScenario(stall_period=4, seed=11),
        )
    )
    assert first == second
