"""Engine regression tests: sharded inline fallback, scenario determinism.

Regressions the equivalence matrix does not pin down directly:

* the sharded backend silently falls back to in-process shards when only
  one worker is requested or the configured start method is unavailable on
  the host — both paths must stay bit-for-bit equivalent to the reference
  simulator;
* delivery scenarios are pure functions of ``(seed, edge, round)``, so a
  faulty run repeated with the same seed must reproduce the identical
  execution on every backend — this is what makes fault experiments
  reproducible at all;
* the bugfix sweep of the vector-layer PR: every backend must materialise
  neighbour tuples before calling a vertex factory, drop (and count)
  deliveries addressed to halted vertices, and size the default sharded
  worker pool from the scheduler affinity mask rather than the host's raw
  core count.
"""

import multiprocessing
import os

import networkx as nx
import pytest

from common import broadcast_workload
from repro.congest.vertex import VertexAlgorithm
from repro.engine import (
    AdversarialDelayScenario,
    LinkDropScenario,
    ShardedBackend,
    run_algorithm,
)
from repro.graphs import erdos_renyi
from repro.listing import list_triangles_distributed


def run_signature(run):
    return {
        "rounds": run.rounds,
        "messages": run.metrics.messages,
        "words": run.metrics.words,
        "halted": run.halted,
        "outputs": run.outputs,
        "combined": run.combined_output(),
    }


# ---------------------------------------------------------------------------
# Sharded inline fallback
# ---------------------------------------------------------------------------


def test_sharded_single_worker_runs_inline_and_matches_reference():
    graph = erdos_renyi(24, 6.0, seed=4)
    factory = broadcast_workload(12)
    reference = run_signature(
        run_algorithm(graph, factory, backend="reference", max_rounds=2000)
    )
    inline = run_signature(
        run_algorithm(
            graph, factory, backend=ShardedBackend(num_workers=1), max_rounds=2000
        )
    )
    assert inline == reference


def test_sharded_unavailable_start_method_falls_back_inline():
    """An unknown start method must degrade to inline shards, not crash."""
    graph = erdos_renyi(24, 6.0, seed=4)
    factory = broadcast_workload(12)
    assert "no-such-method" not in multiprocessing.get_all_start_methods()
    backend = ShardedBackend(num_workers=3, start_method="no-such-method")
    reference = run_signature(
        run_algorithm(graph, factory, backend="reference", max_rounds=2000)
    )
    inline = run_signature(
        run_algorithm(graph, factory, backend=backend, max_rounds=2000)
    )
    assert inline == reference


def test_sharded_inline_multi_shard_under_faults_matches_reference():
    """The inline path must also replay scenario decisions identically."""
    graph = erdos_renyi(20, 5.0, seed=8)
    factory = broadcast_workload(8)
    scenario = LinkDropScenario(drop_probability=0.2, seed=5)
    reference = run_signature(
        run_algorithm(
            graph, factory, backend="reference", scenario=scenario, max_rounds=5000
        )
    )
    backend = ShardedBackend(num_workers=4, start_method="no-such-method")
    inline = run_signature(
        run_algorithm(
            graph, factory, backend=backend, scenario=scenario, max_rounds=5000
        )
    )
    assert inline == reference


# ---------------------------------------------------------------------------
# Sharded batched pipe traffic
# ---------------------------------------------------------------------------


def test_pack_unpack_messages_round_trips():
    from repro.congest.message import Message
    from repro.engine.sharded import _pack_messages, _unpack_messages

    blob = tuple(range(5))  # one payload object shared by several messages
    messages = [
        Message(0, 1, "blob", blob),
        Message(0, 2, "blob", blob),
        Message(3, 1, "ack", None),
    ]
    batch = _pack_messages(messages)
    assert len(batch) == 4  # columnar: senders / receivers / tags / payloads
    assert _unpack_messages(batch) == messages
    assert _unpack_messages(_pack_messages([])) == []


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="forked workers unavailable on this platform",
)
@pytest.mark.parametrize("scenario", [None, LinkDropScenario(0.15, seed=9)])
def test_sharded_process_workers_batched_pipes_match_reference(scenario):
    """Forked workers with columnar pipe batches stay bit-for-bit equivalent.

    This pins the batching change: per-round traffic crosses each worker
    pipe as one columnar payload, and the resulting
    :class:`~repro.congest.network.SynchronousRun` (outputs, rounds,
    messages, words, drops, halting) must be identical to the reference
    simulator's, clean and faulty alike.
    """
    graph = erdos_renyi(30, 6.0, seed=12)
    factory = broadcast_workload(16)
    reference = run_signature(
        run_algorithm(
            graph, factory, backend="reference", scenario=scenario, max_rounds=5000
        )
    )
    backend = ShardedBackend(num_workers=3, start_method="fork")
    sharded_run = run_algorithm(
        graph, factory, backend=backend, scenario=scenario, max_rounds=5000
    )
    assert run_signature(sharded_run) == reference
    assert sharded_run.metrics.dropped == 0


# ---------------------------------------------------------------------------
# Scenario determinism
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["reference", "vectorized", "sharded"])
def test_link_drop_same_seed_reproduces_identical_runs(backend):
    graph = erdos_renyi(25, 6.0, seed=6)
    factory = broadcast_workload(10)
    signatures = [
        run_signature(
            run_algorithm(
                graph,
                factory,
                backend=backend,
                scenario=LinkDropScenario(drop_probability=0.15, seed=42),
                max_rounds=5000,
            )
        )
        for _ in range(3)
    ]
    assert signatures[0] == signatures[1] == signatures[2]


def test_link_drop_seed_changes_the_schedule():
    """Different seeds must produce genuinely different fault schedules."""
    scenario_a = LinkDropScenario(drop_probability=0.5, seed=1)
    scenario_b = LinkDropScenario(drop_probability=0.5, seed=2)
    edges = [((u, v), r) for u in range(6) for v in range(6) if u != v for r in range(20)]
    decisions_a = [scenario_a.transmits(e, r) for e, r in edges]
    decisions_b = [scenario_b.transmits(e, r) for e, r in edges]
    assert decisions_a != decisions_b


def test_distributed_listing_deterministic_under_link_drop():
    """The full distributed pipeline is repeatable under a seeded fault model."""
    graph = erdos_renyi(30, 6.0, seed=9)
    runs = [
        list_triangles_distributed(
            graph,
            backend="vectorized",
            scenario=LinkDropScenario(drop_probability=0.1, seed=7),
        )
        for _ in range(2)
    ]
    assert runs[0].cliques == runs[1].cliques
    assert runs[0].measured_rounds == runs[1].measured_rounds
    assert runs[0].measured_words == runs[1].measured_words
    assert [e.rounds for e in runs[0].executions] == [
        e.rounds for e in runs[1].executions
    ]


# ---------------------------------------------------------------------------
# Bugfix sweep: neighbour materialisation, halted-inbox drops, worker sizing
# ---------------------------------------------------------------------------


class TwiceIteratingFactory(VertexAlgorithm):
    """Consumes the neighbours iterable twice during construction.

    With a lazy generator the second pass silently reads empty; a backend
    that materialises a tuple gives both passes the full adjacency.  The
    output exposes both counts, so a regression shows up as an outputs
    mismatch rather than a silent wrong answer.
    """

    def __init__(self, vertex, neighbors, n):
        first_pass = sum(1 for _ in neighbors)
        second_pass = list(neighbors)
        super().__init__(vertex, second_pass, n)
        self._counts = (first_pass, len(second_pass))

    def on_round(self, round_index, inbox):
        self.output = self._counts
        self.halt()
        return []


@pytest.mark.parametrize("backend", ["reference", "vectorized", "sharded"])
def test_factories_may_iterate_neighbors_twice(backend):
    graph = erdos_renyi(18, 5.0, seed=3)
    run = run_algorithm(graph, TwiceIteratingFactory, backend=backend, max_rounds=10)
    for vertex in graph.nodes:
        degree = len(list(graph.neighbors(vertex)))
        assert run.outputs[vertex] == (degree, degree), (
            f"{backend} passed a single-use neighbours iterable to the factory"
        )


class ChattyNeighbour(VertexAlgorithm):
    """Vertex 0 halts immediately; vertex 1 keeps messaging it anyway."""

    rounds_of_chatter = 5

    def on_round(self, round_index, inbox):
        if self.vertex == 0:
            self.output = "done"
            self.halt()
            return []
        if round_index < self.rounds_of_chatter:
            return [self.send(0, "ping", round_index)]
        self.halt()
        return []


@pytest.mark.parametrize("backend", ["reference", "vectorized", "sharded"])
def test_deliveries_to_halted_vertices_are_dropped(backend):
    """Messages to halted vertices are discarded — and counted — everywhere.

    Before the fix every backend appended them to inboxes that no one would
    ever read again: unbounded memory on long runs with stragglers.
    """
    graph = nx.path_graph(2)
    run = run_algorithm(graph, ChattyNeighbour, backend=backend, max_rounds=100)
    assert run.halted
    # All five pings complete after vertex 0 halted in round 0.
    assert run.metrics.dropped == ChattyNeighbour.rounds_of_chatter
    # The pings still consumed bandwidth: dropped messages are delivered
    # (and charged) before being discarded.
    assert run.metrics.messages >= ChattyNeighbour.rounds_of_chatter


def test_dropped_accounting_is_identical_across_backends():
    graph = erdos_renyi(16, 4.0, seed=12)
    from repro.baselines.naive import bfs_tree_workload

    # BFS halts each vertex the moment it joins the tree, so every duplicate
    # announcement lands on a halted vertex — a natural drop-heavy workload.
    factory = bfs_tree_workload(0)
    reference = run_algorithm(graph, factory, backend="reference", max_rounds=500)
    assert reference.metrics.dropped > 0
    for backend in ["vectorized", "sharded"]:
        run = run_algorithm(graph, factory, backend=backend, max_rounds=500)
        assert run.metrics.dropped == reference.metrics.dropped
        assert run.metrics.messages == reference.metrics.messages
        assert run.outputs == reference.outputs


def test_sharded_worker_default_respects_affinity_mask(monkeypatch):
    """The default pool size is the affinity mask, not min(4, cpu_count)."""
    backend = ShardedBackend()
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(range(8)),
                        raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 64)
    assert backend._resolve_workers(1000) == 8
    # Still capped by the vertex count...
    assert backend._resolve_workers(3) == 3
    # ...and an explicit worker count always wins.
    assert ShardedBackend(num_workers=2)._resolve_workers(1000) == 2


def test_sharded_worker_default_falls_back_to_cpu_count(monkeypatch):
    def unavailable(pid):
        raise AttributeError("sched_getaffinity unavailable on this platform")

    monkeypatch.setattr(os, "sched_getaffinity", unavailable, raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 6)
    assert ShardedBackend()._resolve_workers(1000) == 6


# ---------------------------------------------------------------------------
# Shared-memory sharded transport
# ---------------------------------------------------------------------------


_FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()


@pytest.mark.skipif(not _FORK_AVAILABLE, reason="forked workers unavailable")
@pytest.mark.parametrize("transport", ["shm", "pipe"])
@pytest.mark.parametrize("scenario", [None, LinkDropScenario(0.15, seed=9)])
def test_sharded_transports_match_reference(transport, scenario):
    """Both transports stay bit-for-bit equivalent to the reference."""
    graph = erdos_renyi(30, 6.0, seed=12)
    factory = broadcast_workload(16)
    reference = run_signature(
        run_algorithm(
            graph, factory, backend="reference", scenario=scenario, max_rounds=5000
        )
    )
    backend = ShardedBackend(num_workers=3, start_method="fork", transport=transport)
    sharded_run = run_algorithm(
        graph, factory, backend=backend, scenario=scenario, max_rounds=5000
    )
    assert run_signature(sharded_run) == reference


@pytest.mark.skipif(not _FORK_AVAILABLE, reason="forked workers unavailable")
def test_sharded_shm_overflow_resizes_and_matches_reference(monkeypatch):
    """Tiny blocks force the overflow + pipe-fallback + resize protocol.

    Every round that does not fit ships over the pipe once while the parent
    provisions doubled replacement blocks; results must stay identical and
    no shared-memory segment may leak.
    """
    import repro.engine.shm as shm

    monkeypatch.setattr(shm, "DEFAULT_ROWS", 2)
    monkeypatch.setattr(shm, "DEFAULT_ARENA", 48)
    graph = erdos_renyi(24, 5.0, seed=3)
    factory = broadcast_workload(12)  # tuple payloads exercise the arena
    scenario = LinkDropScenario(0.2, seed=5)
    reference = run_signature(
        run_algorithm(
            graph, factory, backend="reference", scenario=scenario, max_rounds=5000
        )
    )
    backend = ShardedBackend(num_workers=3, start_method="fork", transport="shm")
    run = run_algorithm(
        graph, factory, backend=backend, scenario=scenario, max_rounds=5000
    )
    assert run_signature(run) == reference


def test_sharded_rejects_unknown_transport():
    with pytest.raises(ValueError, match="transport"):
        ShardedBackend(transport="carrier-pigeon")


def test_column_block_round_trips_tags_ints_and_shared_payloads():
    """Writer/reader pair: intern-table growth, inline ints, arena dedupe."""
    from repro.congest.message import Message
    from repro.engine.shm import ColumnBlock, ColumnReader, ColumnWriter

    nodes = ["a", "b", "c"]
    index = {v: i for i, v in enumerate(nodes)}
    block = ColumnBlock(rows_capacity=8, arena_capacity=256)
    try:
        writer = ColumnWriter(block, index)
        reader = ColumnReader(block, nodes)
        blob = (1, 2, 3)
        messages = [
            Message("a", "b", "blob", blob),
            Message("a", "c", "blob", blob),   # same payload object: deduped
            Message("b", "c", "ack", 7),       # plain int: no arena bytes
            Message("c", "a", "ack", -7),
        ]
        rows, arena_bytes, new_tags = writer.encode(messages)
        assert rows == 4 and new_tags == ["blob", "ack"]
        reader.learn(new_tags)
        decoded = reader.decode(rows)
        assert decoded == messages
        # The two blob copies decode to one shared object (pickle-memo
        # parity with the pipe transport) and the arena holds it once.
        assert decoded[0].payload is decoded[1].payload
        import pickle

        assert arena_bytes == len(pickle.dumps(blob, pickle.HIGHEST_PROTOCOL))
        # Second round: the tag table carries over, no new tags cross.
        rows, _, new_tags = writer.encode([Message("b", "a", "ack", 1)])
        assert new_tags == []
        decoded = reader.decode(rows)
        assert decoded == [Message("b", "a", "ack", 1)]
    finally:
        block.close()
        block.unlink()


def test_column_writer_overflow_is_transactional():
    """A failed encode must leave the tag table untouched (reader sync)."""
    from repro.congest.message import Message
    from repro.engine.shm import ColumnBlock, ColumnWriter

    nodes = [0, 1]
    block = ColumnBlock(rows_capacity=4, arena_capacity=8)
    try:
        writer = ColumnWriter(block, {0: 0, 1: 1})
        too_big = Message(0, 1, "huge", tuple(range(100)))
        assert writer.encode([too_big]) is None
        assert writer._tag_ids == {}
        ok = writer.encode([Message(0, 1, "small", 3)])
        assert ok is not None and ok[2] == ["small"]
    finally:
        block.close()
        block.unlink()


@pytest.mark.skipif(not _FORK_AVAILABLE, reason="forked workers unavailable")
def test_shm_transport_reports_unknown_receiver_like_every_backend():
    """A send to a non-existent vertex raises the standard diagnostic.

    The shm encoder maps receivers to dense ids inside the worker, before
    the parent's adjacency check can see the message; a bare ``KeyError``
    here would make the error depend on the transport.
    """
    class Misaddressed(VertexAlgorithm):
        def on_round(self, round_index, inbox):
            if self.vertex == 0:
                return [self.send("no-such-vertex", "oops", 1)]
            self.halt()
            return []

    graph = nx.path_graph(4)
    backend = ShardedBackend(num_workers=2, start_method="fork", transport="shm")
    with pytest.raises(ValueError, match="non-neighbour.*no-such-vertex"):
        run_algorithm(graph, Misaddressed, backend=backend, max_rounds=10)


def test_inline_shards_bypass_all_serialisation(monkeypatch):
    """``num_workers=1`` (and any inline fallback) must never pack or pickle.

    Inline shards hold the parent's very ``Message`` objects; routing them
    through the columnar pack/unpack pair (or any transport) would be pure
    overhead.  Poisoning the transport entry points proves the inline path
    cannot reach them.
    """
    import repro.engine.shm as shm
    from repro.engine import sharded as sharded_module

    def poisoned(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("inline shards must not touch the transport")

    monkeypatch.setattr(sharded_module, "_pack_messages", poisoned)
    monkeypatch.setattr(sharded_module, "_unpack_messages", poisoned)
    monkeypatch.setattr(shm.ColumnBlock, "__init__", poisoned)
    graph = erdos_renyi(20, 5.0, seed=8)
    factory = broadcast_workload(8)
    reference = run_signature(
        run_algorithm(graph, factory, backend="reference", max_rounds=2000)
    )
    inline = run_signature(
        run_algorithm(
            graph, factory,
            backend=ShardedBackend(num_workers=1), max_rounds=2000,
        )
    )
    assert inline == reference


def test_adversarial_delay_same_seed_reproduces_identical_runs():
    graph = erdos_renyi(25, 6.0, seed=6)
    factory = broadcast_workload(10)
    scenario = AdversarialDelayScenario(stall_period=4, seed=11)
    first = run_signature(
        run_algorithm(graph, factory, backend="vectorized", scenario=scenario)
    )
    # A fresh scenario object with the same seed must replay identically
    # (the stall phases are derived from the seed, not from object state).
    second = run_signature(
        run_algorithm(
            graph,
            factory,
            backend="vectorized",
            scenario=AdversarialDelayScenario(stall_period=4, seed=11),
        )
    )
    assert first == second


def test_column_writer_rejects_unknown_sender_and_receiver():
    """Both halves of the dense vertex index give the engine's standard
    ``ValueError`` diagnostic — a bare ``KeyError`` from the index lookup
    would make the error depend on the transport (regression: the sender
    column used a plain ``index[message.sender]``)."""
    from repro.congest.message import Message
    from repro.engine.shm import ColumnBlock, ColumnWriter

    block = ColumnBlock(rows_capacity=4, arena_capacity=64)
    try:
        writer = ColumnWriter(block, {0: 0, 1: 1})
        with pytest.raises(ValueError, match="non-neighbour.*ghost"):
            writer.encode([Message(0, "ghost", "t", 1)])
        with pytest.raises(ValueError, match="unknown sender.*ghost"):
            writer.encode([Message("ghost", 1, "t", 1)])
        # The writer stays usable after a rejected batch.
        ok = writer.encode([Message(0, 1, "t", 1)])
        assert ok is not None
    finally:
        block.close()
        block.unlink()
