"""Tests of the faithful synchronous CONGEST simulator."""

import networkx as nx
import pytest

from repro.congest.message import Message
from repro.congest.network import CongestNetwork, run_algorithm
from repro.congest.vertex import VertexAlgorithm
from repro.baselines.naive import NeighborhoodExchangeTriangles
from repro.graphs.cliques import enumerate_cliques


class FloodMin(VertexAlgorithm):
    """Every vertex learns the minimum identifier by flooding (diameter rounds)."""

    def __init__(self, vertex, neighbors, n):
        super().__init__(vertex, neighbors, n)
        self.best = vertex
        self._changed = True
        self._quiet_rounds = 0

    def on_round(self, round_index, inbox):
        for message in inbox:
            if message.payload < self.best:
                self.best = message.payload
                self._changed = True
        if self._changed:
            self._changed = False
            self._quiet_rounds = 0
            return self.send_to_all_neighbors("min", self.best)
        self._quiet_rounds += 1
        if self._quiet_rounds > self.n:
            self.output = self.best
            self.halt()
        return []


class TestCongestNetwork:
    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            CongestNetwork(nx.empty_graph(0))

    def test_flood_min_on_path(self):
        graph = nx.path_graph(8)
        run = run_algorithm(graph, FloodMin, max_rounds=200)
        assert run.halted
        assert all(value == 0 for value in run.outputs.values())

    def test_flood_min_rounds_at_least_diameter(self):
        graph = nx.path_graph(10)
        run = run_algorithm(graph, FloodMin, max_rounds=500)
        assert run.rounds >= nx.diameter(graph)

    def test_forged_sender_rejected(self):
        class Forger(VertexAlgorithm):
            def on_round(self, round_index, inbox):
                self.halt()
                return [Message(sender=99999, receiver=self.neighbors[0], payload=1)] \
                    if self.neighbors else []

        graph = nx.path_graph(3)
        with pytest.raises(ValueError):
            run_algorithm(graph, Forger, max_rounds=5)

    def test_non_neighbor_send_rejected(self):
        class BadSender(VertexAlgorithm):
            def on_round(self, round_index, inbox):
                self.halt()
                if self.vertex == 0:
                    return [Message(sender=0, receiver=2, payload=1)]
                return []

        graph = nx.path_graph(3)  # 0-1-2: vertex 0 is not adjacent to 2
        with pytest.raises(ValueError):
            run_algorithm(graph, BadSender, max_rounds=5)

    def test_bandwidth_fragmentation_slows_large_payloads(self):
        """A payload of w words over one edge needs at least w rounds."""

        class BigSend(VertexAlgorithm):
            def on_round(self, round_index, inbox):
                if self.vertex == 0 and round_index == 0:
                    return [self.send(1, "big", tuple(range(50)))]
                if inbox:
                    self.output = inbox[0].payload
                    self.halt()
                if self.vertex == 0 and round_index > 0:
                    self.halt()
                return []

        graph = nx.path_graph(2)
        run = run_algorithm(graph, BigSend, max_rounds=500)
        assert run.outputs[1] == tuple(range(50))
        assert run.rounds >= 50

    def test_message_accounting(self):
        graph = nx.complete_graph(5)
        run = run_algorithm(graph, FloodMin, max_rounds=100)
        assert run.metrics.messages > 0
        assert run.metrics.rounds == run.rounds


class TestNeighborhoodExchangeOnSimulator:
    def test_lists_all_triangles(self, tiny_triangle_graph):
        run = run_algorithm(tiny_triangle_graph, NeighborhoodExchangeTriangles, max_rounds=200)
        assert run.halted
        assert run.combined_output() == enumerate_cliques(tiny_triangle_graph, 3)

    def test_lists_all_triangles_on_dense_graph(self, small_dense_graph):
        run = run_algorithm(small_dense_graph, NeighborhoodExchangeTriangles, max_rounds=2000)
        assert run.combined_output() == enumerate_cliques(small_dense_graph, 3)

    def test_rounds_scale_with_max_degree(self):
        sparse = nx.cycle_graph(30)
        dense = nx.complete_graph(30)
        sparse_run = run_algorithm(sparse, NeighborhoodExchangeTriangles, max_rounds=5000)
        dense_run = run_algorithm(dense, NeighborhoodExchangeTriangles, max_rounds=5000)
        assert dense_run.rounds > sparse_run.rounds
