"""Unit tests for CONGEST message sizing and inboxes."""

import pytest

from repro.congest.message import (
    Inbox,
    Message,
    message_size_bits,
    word_size_bits,
    words_for_payload,
)


class TestWordSize:
    def test_minimum_word_size(self):
        assert word_size_bits(2) == 8
        assert word_size_bits(1) == 8

    def test_grows_logarithmically(self):
        assert word_size_bits(1 << 20) == 20
        assert word_size_bits((1 << 20) + 1) == 21

    def test_monotone(self):
        sizes = [word_size_bits(n) for n in (2, 10, 100, 10_000, 10**6)]
        assert sizes == sorted(sizes)


class TestWordsForPayload:
    def test_scalars_cost_one_word(self):
        assert words_for_payload(42, 1000) == 1
        assert words_for_payload(3.14, 1000) == 1
        assert words_for_payload(None, 1000) == 1
        assert words_for_payload(True, 1000) == 1

    def test_tuple_costs_sum_plus_framing(self):
        assert words_for_payload((1, 2, 3), 1000) == 4

    def test_nested_structures(self):
        payload = {1: (2, 3), 4: 5}
        # framing(1) + key(1)+tuple(3) + key(1)+value(1)
        assert words_for_payload(payload, 1000) == 7

    def test_long_adjacency_list_is_linear(self):
        short = words_for_payload(tuple(range(10)), 1000)
        long = words_for_payload(tuple(range(100)), 1000)
        assert long - short == 90

    def test_message_size_bits_multiplies_word_size(self):
        assert message_size_bits((1, 2), 1 << 16) == 3 * 16


class TestMessage:
    def test_words_delegates_to_payload(self):
        message = Message(sender=0, receiver=1, tag="t", payload=(1, 2, 3))
        assert message.words(1000) == 4

    def test_messages_are_frozen(self):
        message = Message(sender=0, receiver=1)
        with pytest.raises(AttributeError):
            message.sender = 5  # type: ignore[misc]


class TestInbox:
    def test_by_tag_filters(self):
        inbox = Inbox(
            messages=[
                Message(0, 1, tag="a", payload=1),
                Message(2, 1, tag="b", payload=2),
                Message(3, 1, tag="a", payload=3),
            ]
        )
        assert [m.payload for m in inbox.by_tag("a")] == [1, 3]
        assert len(inbox) == 3

    def test_clear(self):
        inbox = Inbox(messages=[Message(0, 1)])
        inbox.clear()
        assert len(inbox) == 0
