"""Scenario kernels and the prefix-sum scheduler: agreement properties.

Two contracts pin the vectorized scenario layer:

1. **Kernel/scalar agreement** — for every registered scenario (and for
   random :class:`ComposedScenario` trees), the batch ``transmit_mask``
   must agree call-for-call with the scalar ``transmits``, because the
   fast backends consume the mask while the reference simulator replays
   the scalar form.
2. **Word-accounting equivalence** — the
   :class:`~repro.engine.delivery.WordScheduler`'s prefix-sum completion
   computation must reproduce the reference edge-by-edge word queues
   exactly: same delivery round per message, same words-per-round levels,
   under every scenario, including FIFO contention and batches mixing
   deeply queued and idle edges (the regression shape for the window
   cursor: an edge whose start lies beyond the scan window must keep its
   start culling).
"""

from collections import defaultdict, deque

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.congest.message import Message
from repro.engine.delivery import GraphIndex, WordScheduler
from repro.engine.scenarios import (
    AdversarialDelayScenario,
    BurstyFaultScenario,
    CleanSynchronous,
    ComposedScenario,
    DeliveryScenario,
    HeterogeneousBandwidthScenario,
    LinkDropScenario,
    build_composed,
    scenario_registry,
)

# -- strategies --------------------------------------------------------------

seeds = st.integers(min_value=0, max_value=2**31)


@st.composite
def leaf_scenarios(draw):
    kind = draw(st.sampled_from(
        ["clean", "link-drop", "adversarial-delay", "bursty", "hetero"]
    ))
    seed = draw(seeds)
    if kind == "clean":
        return CleanSynchronous()
    if kind == "link-drop":
        return LinkDropScenario(
            draw(st.floats(min_value=0.0, max_value=0.9)), seed=seed
        )
    if kind == "adversarial-delay":
        return AdversarialDelayScenario(
            draw(st.integers(min_value=2, max_value=9)), seed=seed
        )
    if kind == "bursty":
        length = draw(st.integers(min_value=1, max_value=4))
        return BurstyFaultScenario(
            draw(st.floats(min_value=0.0, max_value=0.95)),
            burst_length=length,
            period=draw(st.integers(min_value=length + 1, max_value=14)),
            seed=seed,
        )
    rates = draw(
        st.lists(
            st.sampled_from([1.0, 0.75, 0.5, 0.25, 0.2]),
            min_size=1, max_size=4,
        )
    )
    return HeterogeneousBandwidthScenario(tuple(rates), seed=seed)


@st.composite
def composed_scenarios(draw, depth: int = 1):
    children = st.deferred(
        lambda: leaf_scenarios()
        if depth == 0
        else st.one_of(leaf_scenarios(), composed_scenarios(depth=depth - 1))
    )
    parts = draw(st.lists(children, min_size=1, max_size=3))
    if draw(st.booleans()):
        return ComposedScenario(parts, mode="overlay")
    durations = [
        draw(st.integers(min_value=1, max_value=25)) for _ in parts[:-1]
    ]
    return ComposedScenario(parts, mode="sequential", durations=durations)


any_scenario = st.one_of(leaf_scenarios(), composed_scenarios())

EDGES = (
    [(i, (i * 7 + 3) % 23) for i in range(20)]
    + [("a", "b"), ("b", "a"), ((1, 2), (3, 4))]
)


# -- 1. kernel/scalar agreement ----------------------------------------------


@given(
    scenario=any_scenario,
    first_round=st.integers(min_value=0, max_value=5_000),
    num_rounds=st.integers(min_value=1, max_value=60),
    data=st.data(),
)
@settings(max_examples=80, deadline=None)
def test_transmit_mask_agrees_with_scalar_transmits(
    scenario, first_round, num_rounds, data
):
    scenario.bind_edges(EDGES)
    ids = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(EDGES) - 1),
            min_size=1, max_size=8,
        )
    )
    mask = scenario.transmit_mask(
        np.asarray(ids, dtype=np.int64), first_round, num_rounds
    )
    assert mask.shape == (len(ids), num_rounds) and mask.dtype == bool
    for row, edge_id in enumerate(ids):
        edge = EDGES[edge_id]
        for column in range(num_rounds):
            assert mask[row, column] == scenario.transmits(
                edge, first_round + column
            ), (scenario.describe(), edge, first_round + column)


def test_every_registered_scenario_declares_a_working_mask():
    """Default constructions of all registered scenarios support the batch API."""
    for name in scenario_registry.names():
        if name == "composed":
            scenario = build_composed(
                op="overlay", children=["link-drop", "bursty"]
            )
        else:
            scenario = scenario_registry.get(name)()
        scenario.bind_edges(EDGES)
        ids = np.arange(4, dtype=np.int64)
        mask = scenario.transmit_mask(ids, 3, 17)
        expected = np.array(
            [
                [scenario.transmits(EDGES[i], 3 + j) for j in range(17)]
                for i in range(4)
            ]
        )
        assert (mask == expected).all(), name


def test_scalar_fallback_mask_replays_transmits():
    """A transmits-only user scenario gets a correct (looped) mask for free."""

    class EveryThird(DeliveryScenario):
        def transmits(self, edge, round_index):
            return round_index % 3 != 0

    scenario = EveryThird()
    assert not scenario.has_kernel
    scenario.bind_edges(EDGES)
    mask = scenario.transmit_mask(np.array([0, 1]), 0, 9)
    assert (mask == np.array([[False, True, True] * 3] * 2)).all()


def test_unbound_default_mask_raises():
    class Custom(DeliveryScenario):
        pass

    with pytest.raises(RuntimeError, match="bind_edges"):
        Custom().transmit_mask(np.array([0]), 0, 1)


# -- 2. word-accounting equivalence ------------------------------------------


def _reference_delivery(plan, scenario, horizon):
    """Faithful per-edge word queues (the CongestNetwork discipline).

    ``plan`` is a list of (message, words, round).  Returns the delivery
    round per message id and the words-crossed level per round.
    """
    queues = defaultdict(deque)
    delivered = {}
    levels = {}
    for round_index in range(horizon):
        for message, words, enqueue_round in plan:
            if enqueue_round == round_index:
                edge = (message.sender, message.receiver)
                for _ in range(words - 1):
                    queues[edge].append(None)
                queues[edge].append(message)
        crossed = 0
        for edge, queue in list(queues.items()):
            if not queue:
                continue
            if not scenario.transmits(edge, round_index):
                continue
            item = queue.popleft()
            crossed += 1
            if isinstance(item, Message):
                delivered[id(item)] = round_index
        levels[round_index] = crossed
        if not any(queues.values()) and round_index > max(
            (r for _, _, r in plan), default=0
        ):
            break
    return delivered, levels


def _run_scheduler(plan, scenario, index, horizon):
    scheduler = WordScheduler(index, scenario, horizon=horizon)
    by_round = defaultdict(list)
    for message, words, enqueue_round in plan:
        by_round[enqueue_round].append((message, words))
    delivered = {}
    levels = {}
    last = max(by_round, default=0)
    for round_index in range(horizon):
        batch = by_round.get(round_index, [])
        scheduler.schedule_messages(
            [m for m, _ in batch], [w for _, w in batch], round_index
        )
        messages, level = scheduler.deliver(round_index)
        levels[round_index] = level
        for message in messages:
            delivered[id(message)] = round_index
        if round_index > last and not scheduler.has_pending:
            break
    return delivered, levels


@given(scenario=any_scenario, data=st.data())
@settings(max_examples=40, deadline=None)
def test_scheduler_matches_reference_word_queues(scenario, data):
    graph = nx.erdos_renyi_graph(8, 0.5, seed=3)
    index = GraphIndex(graph)
    edges = list(index.edge_ids)
    plan = []
    for round_index in range(data.draw(st.integers(min_value=1, max_value=6))):
        for _ in range(data.draw(st.integers(min_value=0, max_value=5))):
            u, v = edges[
                data.draw(st.integers(min_value=0, max_value=len(edges) - 1))
            ]
            words = data.draw(st.integers(min_value=1, max_value=9))
            plan.append((Message(u, v, "t", 0), words, round_index))
    horizon = 600
    got, got_levels = _run_scheduler(plan, scenario, index, horizon)
    want, want_levels = _reference_delivery(plan, scenario, horizon)
    assert got == want
    for round_index in want_levels:
        assert got_levels.get(round_index, 0) == want_levels[round_index]


def test_scheduler_window_cursor_keeps_far_starts_culled():
    """Regression: a batch mixing a deeply queued edge with idle edges.

    The deeply queued edge's transfers start far beyond the first scan
    window; the window cursor must not let crossings before that start
    count toward its words (the bug made faulty runs complete *earlier*
    than clean ones).
    """
    graph = nx.path_graph(6)
    index = GraphIndex(graph)
    scenario = LinkDropScenario(0.1, seed=7)
    plan = []
    # Pile 60 words onto one edge in round 0, so later transfers on that
    # edge start around round ~66 while other edges are idle.
    for _ in range(10):
        plan.append((Message(0, 1, "t", 0), 6, 0))
    # Round 4: one more transfer on the hot edge plus fresh idle edges —
    # the mixed-start batch of the original failure.
    plan.append((Message(0, 1, "t", 0), 4, 4))
    plan.append((Message(2, 3, "t", 0), 4, 4))
    plan.append((Message(4, 5, "t", 0), 1, 4))
    got, got_levels = _run_scheduler(plan, scenario, index, 800)
    want, want_levels = _reference_delivery(plan, scenario, 800)
    assert got == want
    for round_index in want_levels:
        assert got_levels.get(round_index, 0) == want_levels[round_index]


def test_faulty_completion_never_precedes_clean():
    """Sanity: under any scenario a transfer completes no earlier than clean."""
    graph = nx.path_graph(4)
    index = GraphIndex(graph)
    plan = [(Message(0, 1, "blob", 0), 40, 0), (Message(2, 3, "blob", 0), 17, 2)]
    clean, _ = _run_scheduler(plan, CleanSynchronous(), index, 800)
    for scenario in [
        LinkDropScenario(0.4, seed=1),
        BurstyFaultScenario(0.5, 3, 8, seed=2),
        HeterogeneousBandwidthScenario((0.5, 0.25), seed=3),
        AdversarialDelayScenario(3, seed=4),
    ]:
        faulty, _ = _run_scheduler(plan, scenario, index, 800)
        for key, clean_round in clean.items():
            assert faulty[key] >= clean_round, scenario.describe()


def test_blocked_edge_parks_at_horizon_in_bulk_path():
    """A never-transmitting kernel scenario leaves transfers pending forever."""

    class Blackout(CleanSynchronous):
        is_clean = False
        has_kernel = True

        def transmits(self, edge, round_index):
            return False

        def transmit_mask(self, edge_ids, first_round, num_rounds):
            return np.zeros((np.asarray(edge_ids).size, num_rounds), dtype=bool)

    graph = nx.path_graph(3)
    index = GraphIndex(graph)
    scheduler = WordScheduler(index, Blackout(), horizon=50)
    scheduler.schedule_messages(
        [Message(0, 1, "t", 0), Message(0, 1, "t", 0)], [3, 2], 0
    )
    for round_index in range(50):
        messages, level = scheduler.deliver(round_index)
        assert not messages and level == 0
    assert scheduler.has_pending


# -- 3. composed round-trip through the spec JSON form -----------------------


@given(scenario=composed_scenarios(), data=st.data())
@settings(max_examples=25, deadline=None)
def test_composed_spec_params_round_trip(scenario, data):
    params = scenario.spec_params()
    rebuilt = build_composed(**params)
    scenario.bind_edges(EDGES)
    rebuilt.bind_edges(EDGES)
    ids = np.arange(len(EDGES), dtype=np.int64)
    first = data.draw(st.integers(min_value=0, max_value=200))
    assert (
        scenario.transmit_mask(ids, first, 40)
        == rebuilt.transmit_mask(ids, first, 40)
    ).all()
