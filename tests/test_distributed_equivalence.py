"""Measured engine costs vs. the cost-model accountant, on fixed graphs.

Tolerance (documented contract): the cost model charges the *full* pipeline,
including the steps the distributed execution performs as centralized
preprocessing — the CS20 expander decomposition (Theorem 5), the
partition-tree construction (Theorem 16) and the ``n^{o(1)}`` routing
overhead of Theorem 6.  The prediction is therefore a strict upper bound on
the rounds the message protocol itself may spend:

    levels <= measured_rounds <= predicted_rounds   (tolerance factor 1.0)

Both modes are built from the same per-cluster blueprint, so they must also
agree *exactly* on the listed clique set at every recursion level — which
makes the final sets equal, not merely both-correct.
"""

import networkx as nx
import pytest

from common import listing_workload_graph
from repro.graphs import erdos_renyi, planted_cliques, ring_of_cliques
from repro.graphs.cliques import enumerate_cliques
from repro.listing import (
    list_triangles,
    list_triangles_distributed,
    validate_distributed_listing,
)


def fixed_graphs():
    tiny = nx.Graph([(0, 1), (1, 2), (0, 2), (2, 3), (1, 3), (3, 4)])
    return [
        pytest.param(tiny, id="tiny"),
        pytest.param(ring_of_cliques(5, 5), id="clique-ring"),
        pytest.param(erdos_renyi(36, 12.0, seed=7), id="dense-er"),
        pytest.param(erdos_renyi(50, 4.0, seed=3), id="sparse-er"),
        pytest.param(
            planted_cliques(40, 4, 4, background_avg_degree=3.0, seed=5),
            id="planted",
        ),
    ]


@pytest.mark.parametrize("graph", fixed_graphs())
def test_distributed_cliques_equal_cost_model_cliques(graph):
    cost = list_triangles(graph)
    distributed = list_triangles_distributed(graph, backend="reference")
    truth = enumerate_cliques(graph, 3)
    assert cost.cliques == truth
    assert distributed.cliques == cost.cliques


@pytest.mark.parametrize("graph", fixed_graphs())
def test_measured_rounds_within_cost_model_prediction(graph):
    distributed = list_triangles_distributed(graph, backend="vectorized")
    assert distributed.executions, "listing must execute at least one protocol"
    # Upper bound: the accountant's prediction covers the whole pipeline.
    assert distributed.measured_rounds <= distributed.predicted_rounds
    # Lower sanity bound: every recursion level costs at least one round.
    assert distributed.measured_rounds >= max(1, distributed.levels)
    # Real traffic crossed the network.
    assert distributed.measured_words > 0
    assert distributed.measured_messages > 0


@pytest.mark.parametrize("graph", fixed_graphs())
def test_predicted_rounds_match_cost_model_run(graph):
    """The embedded prediction equals an independent cost-model run."""
    cost = list_triangles(graph)
    distributed = list_triangles_distributed(graph, backend="vectorized")
    assert distributed.predicted_rounds == cost.rounds


def test_per_level_parallel_accounting_takes_cluster_maximum():
    """Clusters of a level run in parallel: a level costs its slowest cluster."""
    graph = nx.disjoint_union(nx.complete_graph(30), nx.complete_graph(30))
    graph.add_edge(0, 30)
    distributed = list_triangles_distributed(graph, backend="vectorized")
    level0 = [e for e in distributed.executions if e.level == 0 and not e.is_fallback]
    assert len(level0) >= 2, "the bridge cut must split the graph into clusters"
    per_level: dict[int, int] = {}
    fallback = 0
    for record in distributed.executions:
        if record.is_fallback:
            fallback += record.rounds
        else:
            per_level[record.level] = max(
                per_level.get(record.level, 0), record.rounds
            )
    assert distributed.measured_rounds == sum(per_level.values()) + fallback
    assert distributed.measured_rounds < sum(
        record.rounds for record in distributed.executions
    ) + 1  # strict when a level has >= 2 clusters, degenerate otherwise
    assert distributed.cliques == enumerate_cliques(graph, 3)


def test_validation_report_cross_checks_costs():
    # The same graph family the E12 benchmark scales to 200/1000 vertices.
    graph = listing_workload_graph(60)
    distributed = list_triangles_distributed(graph, backend="vectorized")
    report = validate_distributed_listing(graph, distributed)
    assert report.coverage.correct
    assert report.within_predicted
    assert report.ok
    assert "OK" in report.summary()


def test_measured_rounds_fold_into_driver_accounting():
    """Driver totals = measured executions + the charged decomposition cost.

    The recursion charges the centrally performed CS20 decomposition per
    level and folds each level's slowest cluster execution on top, so the
    driver-level round total must decompose exactly.
    """
    graph = erdos_renyi(30, 6.0, seed=1)
    distributed = list_triangles_distributed(graph, backend="vectorized")
    decomposition = sum(
        report.decomposition_rounds for report in distributed.level_reports
    )
    assert distributed.rounds == distributed.measured_rounds + decomposition
    # Engine traffic is attributed to the per-level cluster phases.
    cluster_messages = sum(
        count
        for phase, count in distributed.metrics.phase_messages.items()
        if phase.endswith(":clusters")
    )
    assert cluster_messages == distributed.measured_messages
