"""Tests of the pluggable execution engine: backends, scenarios, accounting."""

import networkx as nx
import pytest

from repro.congest.message import Message, words_for_payload
from repro.congest.network import CongestNetwork, run_algorithm as network_run
from repro.congest.vertex import VertexAlgorithm
from repro.engine import (
    AdversarialDelayScenario,
    Backend,
    CleanSynchronous,
    DeliveryScenario,
    LinkDropScenario,
    ReferenceBackend,
    ShardedBackend,
    VectorizedBackend,
    available_backends,
    resolve_backend,
    resolve_scenario,
    run_algorithm,
)

ALL_BACKENDS = ["reference", "vectorized", "sharded"]


class SendOnce(VertexAlgorithm):
    """Vertex 0 sends one multi-word payload to vertex 1, then both halt."""

    payload = tuple(range(9))  # 10 CONGEST words

    def on_round(self, round_index, inbox):
        if self.vertex == 0 and round_index == 0:
            return [self.send(1, "blob", self.payload)]
        if inbox:
            self.output = inbox[0].payload
            self.halt()
        if self.vertex == 0 and round_index > 0:
            self.halt()
        return []


class Chatter(VertexAlgorithm):
    """Exchanges single-word pings for a fixed number of rounds."""

    rounds = 6

    def on_round(self, round_index, inbox):
        if round_index >= self.rounds:
            self.output = round_index
            self.halt()
            return []
        return self.send_to_all_neighbors("ping", round_index)


class TestBackendResolution:
    def test_registry_names(self):
        assert available_backends() == sorted(ALL_BACKENDS)

    def test_resolve_by_name_instance_class_and_none(self):
        assert isinstance(resolve_backend("vectorized"), VectorizedBackend)
        assert isinstance(resolve_backend(None), ReferenceBackend)
        assert isinstance(resolve_backend(ShardedBackend), ShardedBackend)
        configured = ShardedBackend(num_workers=2)
        assert resolve_backend(configured) is configured

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gpu")

    def test_unknown_backend_error_lists_sorted_registry_names(self):
        with pytest.raises(ValueError) as excinfo:
            resolve_backend("gpu")
        assert str(available_backends()) in str(excinfo.value)

    def test_registered_backend_resolves_by_name(self):
        from repro.engine import register_backend
        from repro.engine.registry import backend_registry

        @register_backend("unit-echo")
        class EchoBackend(ReferenceBackend):
            pass

        try:
            assert "unit-echo" in available_backends()
            assert isinstance(resolve_backend("unit-echo"), EchoBackend)
        finally:
            backend_registry.entries.pop("unit-echo")

    def test_non_backend_rejected(self):
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_backend_is_abstract(self):
        with pytest.raises(TypeError):
            Backend()


class TestScenarioResolution:
    def test_resolve_by_name_and_none(self):
        assert resolve_scenario(None).is_clean
        assert resolve_scenario("clean").is_clean
        assert isinstance(resolve_scenario("link-drop"), LinkDropScenario)
        assert isinstance(
            resolve_scenario("adversarial-delay"), AdversarialDelayScenario
        )

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            resolve_scenario("solar-flare")

    def test_unknown_scenario_error_lists_sorted_registry_names(self):
        from repro.engine import available_scenarios

        with pytest.raises(ValueError) as excinfo:
            resolve_scenario("solar-flare")
        message = str(excinfo.value)
        assert str(available_scenarios()) in message
        for name in ("bursty", "clean", "heterogeneous-bandwidth", "link-drop"):
            assert name in message

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LinkDropScenario(drop_probability=1.0)
        with pytest.raises(ValueError):
            AdversarialDelayScenario(stall_period=1)

    def test_transfer_schedule_replays_transmit_decisions(self):
        scenario = LinkDropScenario(drop_probability=0.5, seed=7)
        schedule = scenario.transfer_schedule(("a", "b"), 3, 5)
        assert len(schedule) == 5
        assert schedule == sorted(schedule)
        assert all(scenario.transmits(("a", "b"), r) for r in schedule)
        blocked = [
            r for r in range(3, schedule[-1]) if r not in set(schedule)
        ]
        assert all(not scenario.transmits(("a", "b"), r) for r in blocked)

    def test_adversarial_delay_is_bandwidth_bounded(self):
        scenario = AdversarialDelayScenario(stall_period=4, seed=1)
        words = 12
        schedule = scenario.transfer_schedule(("x", "y"), 0, words)
        # Bounded stretch: at most one stall per period.
        assert schedule[-1] + 1 <= words * 4 / 3 + scenario.stall_period


@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestBackendContract:
    def test_empty_graph_rejected(self, backend):
        with pytest.raises(ValueError):
            run_algorithm(nx.empty_graph(0), Chatter, backend=backend)

    def test_forged_sender_rejected(self, backend):
        class Forger(VertexAlgorithm):
            def on_round(self, round_index, inbox):
                self.halt()
                if self.neighbors:
                    return [Message(sender=99999, receiver=self.neighbors[0])]
                return []

        with pytest.raises(ValueError, match="forge"):
            run_algorithm(nx.path_graph(3), Forger, backend=backend, max_rounds=5)

    def test_non_neighbor_send_rejected(self, backend):
        class BadSender(VertexAlgorithm):
            def on_round(self, round_index, inbox):
                self.halt()
                if self.vertex == 0:
                    return [Message(sender=0, receiver=2)]
                return []

        with pytest.raises(ValueError, match="non-neighbour"):
            run_algorithm(nx.path_graph(3), BadSender, backend=backend, max_rounds=5)

    def test_fragmented_payload_words_are_fully_charged(self, backend):
        """Regression: placeholder fragments must count toward the word total."""
        graph = nx.path_graph(2)
        run = run_algorithm(graph, SendOnce, backend=backend, max_rounds=100)
        expected_words = words_for_payload(SendOnce.payload, 2)
        assert expected_words == 10
        assert run.metrics.messages == 1
        assert run.metrics.words == expected_words
        assert run.outputs[1] == SendOnce.payload
        assert run.rounds >= expected_words

    def test_link_drop_stretches_rounds_not_output(self, backend):
        graph = nx.path_graph(2)
        clean = run_algorithm(graph, SendOnce, backend=backend, max_rounds=500)
        faulty = run_algorithm(
            graph,
            SendOnce,
            backend=backend,
            scenario=LinkDropScenario(drop_probability=0.4, seed=13),
            max_rounds=500,
        )
        assert faulty.outputs == clean.outputs
        assert faulty.rounds > clean.rounds
        assert faulty.metrics.words == clean.metrics.words

    def test_permanently_blocked_edge_honours_max_rounds(self, backend):
        """Regression: a scenario that never transmits must not hang the
        batch schedulers; every backend stops at max_rounds with identical
        (zero-delivery) accounting."""

        class Blackout(DeliveryScenario):
            def transmits(self, edge, round_index):
                return False

        graph = nx.path_graph(3)
        run = run_algorithm(
            graph, Chatter, backend=backend, scenario=Blackout(), max_rounds=25
        )
        assert run.rounds == 25
        assert run.halted  # vertices halt locally; their words never arrive
        assert run.metrics.messages == 0
        assert run.metrics.words == 0

    def test_scenario_by_name(self, backend):
        run = run_algorithm(
            nx.path_graph(4),
            Chatter,
            backend=backend,
            scenario="adversarial-delay",
            max_rounds=200,
        )
        assert run.halted

    def test_legacy_entry_point_accepts_backend(self, backend):
        """repro.congest.network.run_algorithm routes through the engine."""
        run = network_run(nx.cycle_graph(6), Chatter, backend=backend)
        assert run.halted
        assert run.rounds == Chatter.rounds + 1


class TestReferenceNetworkInternals:
    def test_drained_edge_queues_are_pruned(self):
        """Regression: long runs must not accumulate empty deques."""
        graph = nx.complete_graph(6)
        network = CongestNetwork(graph)
        network.run(Chatter, max_rounds=100)
        assert network._edge_queues == {}

    def test_blocked_edges_keep_their_queue(self):
        class Stalled(DeliveryScenario):
            def transmits(self, edge, round_index):
                return round_index > 3

        graph = nx.path_graph(2)
        network = CongestNetwork(graph, scenario=Stalled())
        run = network.run(Chatter, max_rounds=50)
        assert run.halted
        assert network._edge_queues == {}


class TestShardedConfigurations:
    def test_inline_single_worker_matches_reference(self):
        graph = nx.cycle_graph(9)
        reference = run_algorithm(graph, Chatter, backend="reference")
        inline = ShardedBackend(num_workers=1).run(graph, Chatter)
        assert inline.rounds == reference.rounds
        assert inline.outputs == reference.outputs
        assert inline.metrics.words == reference.metrics.words

    def test_unavailable_start_method_falls_back_inline(self):
        graph = nx.cycle_graph(9)
        backend = ShardedBackend(num_workers=3, start_method="no-such-method")
        run = backend.run(graph, Chatter)
        assert run.halted

    def test_worker_count_capped_by_vertices(self):
        graph = nx.path_graph(2)
        run = ShardedBackend(num_workers=8).run(graph, SendOnce, max_rounds=100)
        assert run.halted
        assert run.outputs[1] == SendOnce.payload
