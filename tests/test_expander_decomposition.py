"""Tests of the deterministic expander decomposition (Theorem 5 substitute)."""

import networkx as nx
import pytest

from repro.congest.cost import CostAccountant, unit_overhead
from repro.decomposition.expander import (
    decomposition_round_cost,
    expander_decompose,
    recursive_decomposition_schedule,
    sparsest_sweep_cut,
)
from repro.graphs import clustered_communities, erdos_renyi, ring_of_cliques
from repro.graphs.properties import graph_conductance_estimate


class TestSweepCut:
    def test_trivial_graphs(self):
        empty_cut, value = sparsest_sweep_cut(nx.empty_graph(3))
        assert empty_cut == set()
        assert value == float("inf")

    def test_barbell_cut_separates_the_bells(self):
        graph = nx.barbell_graph(8, 0)
        cut, value = sparsest_sweep_cut(graph)
        assert value < 0.05
        assert len(cut) == 8

    def test_clique_has_no_sparse_cut(self):
        _, value = sparsest_sweep_cut(nx.complete_graph(12))
        assert value > 0.4


class TestExpanderDecomposition:
    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            expander_decompose(nx.complete_graph(4), epsilon=0.0)

    def test_partition_of_edges_is_exact(self, community_graph):
        decomposition = expander_decompose(community_graph, epsilon=0.2)
        decomposition.validate()

    def test_clusters_are_vertex_disjoint(self, community_graph):
        decomposition = expander_decompose(community_graph, epsilon=0.2)
        seen = set()
        for cluster in decomposition.clusters:
            assert not (seen & cluster.vertices)
            seen |= cluster.vertices

    def test_remainder_fraction_small_on_community_graph(self, community_graph):
        decomposition = expander_decompose(community_graph, epsilon=0.2)
        assert decomposition.remainder_fraction() <= 0.2

    def test_expander_stays_whole(self, expander_graph):
        decomposition = expander_decompose(expander_graph, epsilon=0.15)
        assert decomposition.num_clusters == 1
        assert decomposition.remainder_fraction() == 0.0

    def test_clusters_have_certified_conductance(self, community_graph):
        decomposition = expander_decompose(community_graph, epsilon=0.2)
        for cluster in decomposition.clusters:
            if cluster.num_vertices < 3:
                continue
            measured = graph_conductance_estimate(cluster.subgraph())
            assert measured >= decomposition.phi * 0.5

    def test_ring_of_cliques_splits_into_clusters(self):
        graph = ring_of_cliques(12, 8)
        decomposition = expander_decompose(graph, epsilon=0.3)
        assert decomposition.num_clusters >= 2
        assert decomposition.remainder_fraction() < 0.3

    def test_cluster_of_vertex_map(self, community_graph):
        decomposition = expander_decompose(community_graph, epsilon=0.2)
        mapping = decomposition.cluster_of_vertex()
        for cluster in decomposition.clusters:
            for vertex in cluster.vertices:
                assert mapping[vertex] == cluster.index

    def test_round_cost_charged_to_accountant(self):
        graph = erdos_renyi(40, 8.0, seed=1)
        accountant = CostAccountant(n=40, overhead=unit_overhead())
        expander_decompose(graph, epsilon=0.2, accountant=accountant)
        assert accountant.metrics.rounds > 0
        assert "expander-decomposition" in accountant.metrics.phase_rounds

    def test_decomposition_cost_is_subpolynomial(self):
        # The CS20 cost is n^{o(1)}: eventually below any fixed polynomial,
        # and its growth factor over a squared input is far below polynomial.
        assert decomposition_round_cost(10**12, 0.1) < (10**12) ** 0.5
        growth = decomposition_round_cost(10**8, 0.1) / decomposition_round_cost(10**4, 0.1)
        assert growth < (10**8 / 10**4) ** 0.5


class TestRecursiveSchedule:
    def test_schedule_terminates_and_shrinks(self, community_graph):
        levels = list(recursive_decomposition_schedule(community_graph, epsilon=0.2))
        assert levels
        sizes = [current.number_of_edges() for _, _, current in levels]
        assert all(later < earlier for earlier, later in zip(sizes, sizes[1:]))

    def test_depth_is_logarithmic(self, community_graph):
        levels = list(recursive_decomposition_schedule(community_graph, epsilon=0.2))
        m = community_graph.number_of_edges()
        assert len(levels) <= 2 * (m.bit_length()) + 4
