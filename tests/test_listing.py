"""End-to-end tests of the deterministic listing algorithms (Theorems 32, 36)."""

import networkx as nx
import pytest

from repro import CliqueListing, TriangleListing, list_cliques, list_triangles, validate_listing
from repro.congest.cost import subpolynomial_overhead, unit_overhead
from repro.graphs import (
    clustered_communities,
    enumerate_cliques,
    erdos_renyi,
    expander_like,
    planted_cliques,
    power_law,
    ring_of_cliques,
)
from repro.listing.local import (
    cliques_through_vertex,
    exhaustive_rounds_bound,
    two_hop_exhaustive_listing,
)


class TestExhaustiveLocalListing:
    def test_rounds_bound_linear(self):
        assert exhaustive_rounds_bound(10) == 20
        assert exhaustive_rounds_bound(0) == 0

    def test_cliques_through_vertex_complete_graph(self):
        graph = nx.complete_graph(6)
        assert len(cliques_through_vertex(graph, 0, 3)) == 10  # C(5,2)
        assert len(cliques_through_vertex(graph, 0, 4)) == 10  # C(5,3)

    def test_two_hop_covers_all_cliques_through_selected_vertices(self, planted_graph):
        vertices = list(planted_graph.nodes)[:20]
        outcome = two_hop_exhaustive_listing(planted_graph, vertices, p=3)
        expected = set()
        for vertex in vertices:
            expected |= cliques_through_vertex(planted_graph, vertex, 3)
        assert outcome.cliques == expected

    def test_empty_vertex_set(self, planted_graph):
        outcome = two_hop_exhaustive_listing(planted_graph, [], p=3)
        assert outcome.cliques == set()
        assert outcome.rounds == 0


class TestTriangleListingCorrectness:
    @pytest.mark.parametrize(
        "graph_builder",
        [
            lambda: erdos_renyi(70, 12.0, seed=1),
            lambda: planted_cliques(60, 4, 6, background_avg_degree=3.0, seed=2),
            lambda: clustered_communities(3, 20, intra_p=0.5, inter_p=0.03, seed=4),
            lambda: expander_like(60, degree=8, seed=5),
            lambda: power_law(60, avg_degree=6.0, seed=6),
            lambda: ring_of_cliques(6, 6),
        ],
        ids=["erdos-renyi", "planted", "communities", "expander", "power-law", "clique-ring"],
    )
    def test_lists_exactly_the_triangles(self, graph_builder):
        graph = graph_builder()
        report = validate_listing(graph, list_triangles(graph))
        assert report.correct, report.summary()

    def test_triangle_free_graph(self):
        graph = nx.cycle_graph(30)
        result = list_triangles(graph)
        assert result.cliques == set()

    def test_empty_and_tiny_graphs(self):
        empty = nx.empty_graph(5)
        assert list_triangles(empty).cliques == set()
        single_triangle = nx.complete_graph(3)
        assert list_triangles(single_triangle).cliques == {(0, 1, 2)}

    def test_deterministic_across_runs(self):
        graph = erdos_renyi(50, 10.0, seed=3)
        first = list_triangles(graph)
        second = list_triangles(graph)
        assert first.cliques == second.cliques
        assert first.rounds == second.rounds

    def test_constraint_checked_run(self):
        graph = erdos_renyi(60, 12.0, seed=9)
        result = TriangleListing(check_tree_constraints=True).run(graph)
        assert validate_listing(graph, result).correct


class TestTriangleListingAccounting:
    def test_rounds_positive_and_phases_recorded(self):
        graph = erdos_renyi(60, 12.0, seed=2)
        result = list_triangles(graph)
        assert result.rounds > 0
        assert any("decomposition" in phase for phase in result.metrics.phase_rounds)
        assert any("clusters" in phase for phase in result.metrics.phase_rounds)

    def test_level_reports_consistent(self):
        graph = clustered_communities(3, 20, seed=7)
        result = list_triangles(graph)
        assert result.levels == len(result.level_reports)
        for report in result.level_reports:
            assert report.residual_edges > 0
            assert 0 <= report.remainder_fraction <= 1

    def test_recursion_depth_logarithmic(self):
        graph = clustered_communities(4, 16, intra_p=0.5, inter_p=0.05, seed=1)
        result = list_triangles(graph)
        m = graph.number_of_edges()
        assert result.levels <= 2 * m.bit_length() + 4

    def test_overhead_model_affects_rounds(self):
        graph = erdos_renyi(60, 12.0, seed=2)
        cheap = TriangleListing(overhead=unit_overhead()).run(graph)
        costly = TriangleListing(overhead=subpolynomial_overhead()).run(graph)
        assert cheap.cliques == costly.cliques
        assert costly.rounds > cheap.rounds

    def test_duplication_factor_at_least_one(self):
        graph = planted_cliques(50, 4, 5, seed=8)
        result = list_triangles(graph)
        if result.cliques:
            assert result.duplication_factor >= 1.0


class TestKpListingCorrectness:
    @pytest.mark.parametrize("p", [4, 5])
    def test_lists_exactly_the_cliques_planted(self, p, planted_graph):
        report = validate_listing(planted_graph, list_cliques(planted_graph, p))
        assert report.correct, report.summary()

    @pytest.mark.parametrize("p", [4, 5])
    def test_lists_exactly_the_cliques_dense(self, p, small_dense_graph):
        report = validate_listing(small_dense_graph, list_cliques(small_dense_graph, p))
        assert report.correct, report.summary()

    def test_communities_k4(self, community_graph):
        report = validate_listing(community_graph, list_cliques(community_graph, 4))
        assert report.correct, report.summary()

    def test_clique_free_graph(self):
        graph = nx.cycle_graph(20)
        assert list_cliques(graph, 4).cliques == set()

    def test_dispatch_to_triangles_for_p3(self, tiny_triangle_graph):
        result = list_cliques(tiny_triangle_graph, 3)
        assert result.p == 3
        assert result.cliques == enumerate_cliques(tiny_triangle_graph, 3)

    def test_p_below_four_rejected_by_clique_listing(self):
        with pytest.raises(ValueError):
            CliqueListing(p=3)

    def test_k6_on_small_graph(self):
        graph = planted_cliques(40, 6, 3, background_avg_degree=2.0, seed=5)
        report = validate_listing(graph, list_cliques(graph, 6))
        assert report.correct, report.summary()

    def test_deterministic_across_runs(self, planted_graph):
        first = list_cliques(planted_graph, 4)
        second = list_cliques(planted_graph, 4)
        assert first.cliques == second.cliques
        assert first.rounds == second.rounds


class TestKpListingAccounting:
    def test_rounds_positive(self, planted_graph):
        result = list_cliques(planted_graph, 4)
        assert result.rounds > 0

    def test_k4_cheaper_than_k5_on_same_graph(self, small_dense_graph):
        """The target complexity rises with p: n^{1/2} for K4 vs n^{3/5} for K5."""
        k4 = list_cliques(small_dense_graph, 4)
        k5 = list_cliques(small_dense_graph, 5)
        assert k4.rounds <= k5.rounds * 1.5  # allow slack: same order, not wildly apart


class TestValidationReport:
    def test_report_flags_missing_and_spurious(self, tiny_triangle_graph):
        result = list_triangles(tiny_triangle_graph)
        result.cliques.discard((0, 1, 2))
        result.cliques.add((0, 1, 4))  # not a triangle of the graph
        report = validate_listing(tiny_triangle_graph, result)
        assert not report.complete
        assert not report.sound
        assert "FAILED" in report.summary()
