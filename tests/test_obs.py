"""Observability layer tests: tracers, exports, diffing, and invariance.

The load-bearing guarantee is *invariance*: tracing is observability, not
semantics, so a traced run and an untraced run of the same spec must
produce bit-identical result digests on every backend.  On top of that the
suite checks the tracers' own contracts (event shapes, span accounting,
JSONL/Chrome export) and the trace-diff divergence debugger (a doctored
trace must be pinned to its exact first divergent round and messages).
"""

import io
import json

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from common import VectorFloodMinimum
from repro.baselines.naive import FloodMinimum
from repro.congest.message import Message
from repro.engine import ShardedBackend, run_algorithm
from repro.experiments import ExperimentSpec, Session
from repro.graphs import erdos_renyi
from repro.obs import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    chrome_trace_events,
    diff_delivered,
    read_jsonl_events,
    run_trace_diff,
    write_chrome_trace,
)

BACKENDS = ["reference", "vectorized", "sharded"]


def unit_spec(**overrides):
    params = dict(
        name="unit",
        graph="erdos-renyi",
        graph_params={"n": 24, "avg_degree": 5.0, "seed": 3},
        workload="flood-min",
        seeds=(0, 1),
    )
    params.update(overrides)
    return ExperimentSpec(**params)


def workload_graph():
    return erdos_renyi(n=24, avg_degree=5.0, seed=3)


# ---------------------------------------------------------------------------
# Tracer unit behaviour
# ---------------------------------------------------------------------------


class TestTracers:
    def test_null_tracer_is_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        assert tracer.record_messages is False
        tracer.round_begin(0, active=1, pending=0)
        tracer.round_end(0, delivered=1, words=1, dropped=0, seconds=0.1)
        tracer.messages_delivered(0, [Message(0, 1, "t", None)])
        tracer.barrier_wait(0, 0, 0.5)
        with tracer.span("compute"):
            pass
        tracer.span_add("compute", 1.0)
        assert tracer.span_totals() == {}
        assert NULL_TRACER.enabled is False

    def test_recording_tracer_round_events(self):
        tracer = RecordingTracer()
        tracer.round_begin(0, active=3, pending=0)
        tracer.round_end(0, delivered=2, words=4, dropped=1, seconds=0.01)
        tracer.round_begin(1, active=1, pending=2)
        tracer.round_end(1, delivered=0, words=0, dropped=0, seconds=0.02)
        rounds = tracer.rounds()
        assert [r["round"] for r in rounds] == [0, 1]
        assert rounds[0]["delivered"] == 2
        assert rounds[0]["words"] == 4
        assert rounds[0]["dropped"] == 1
        assert tracer.events_of("round_begin")[1]["pending"] == 2

    def test_recording_tracer_message_content(self):
        tracer = RecordingTracer()
        tracer.messages_delivered(
            3, [Message(0, 1, "tag", (1, 2)), Message(1, 0, "tag", None)]
        )
        assert tracer.delivered_by_round() == {
            3: [(0, 1, "tag", "(1, 2)"), (1, 0, "tag", "None")]
        }

    def test_record_messages_off_suppresses_content(self):
        tracer = RecordingTracer(record_messages=False)
        tracer.messages_delivered(0, [Message(0, 1, "t", None)])
        assert tracer.events == []

    def test_span_context_manager_and_totals(self):
        tracer = RecordingTracer()
        with tracer.span("run_cell"):
            pass
        tracer.span_add("compute", 0.25, round_index=7)
        tracer.span_add("compute", 0.5)
        totals = tracer.span_totals()
        assert totals["compute"] == pytest.approx(0.75)
        assert totals["run_cell"] >= 0.0
        spans = tracer.events_of("span")
        assert any(e.get("round") == 7 for e in spans)

    def test_barrier_wait_feeds_span_totals(self):
        tracer = RecordingTracer()
        tracer.barrier_wait(0, 0, 0.25)
        tracer.barrier_wait(0, 1, 0.5)
        assert tracer.span_totals()["barrier"] == pytest.approx(0.75)

    def test_jsonl_tracer_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTracer(path) as tracer:
            tracer.round_begin(0, active=2, pending=0)
            # A non-JSON payload type must fall back to repr, not crash.
            tracer.record_messages = True
            tracer.messages_delivered(0, [Message((0, 1), 2, "t", {3})])
            tracer.round_end(0, delivered=1, words=1, dropped=0, seconds=0.1)
        events = read_jsonl_events(path)
        assert [e["kind"] for e in events] == [
            "round_begin", "delivered", "round_end",
        ]
        tracer.close()  # idempotent

    def test_jsonl_tracer_accepts_file_object(self):
        buffer = io.StringIO()
        tracer = JsonlTracer(buffer)
        tracer.round_begin(0, active=1, pending=0)
        tracer.close()
        assert json.loads(buffer.getvalue())["kind"] == "round_begin"


# ---------------------------------------------------------------------------
# Invariance: tracing must never perturb execution
# ---------------------------------------------------------------------------


class TestTracingInvariance:
    def test_digests_identical_untraced_null_and_recording(self):
        spec = unit_spec()
        untraced = Session(name="plain").grid(spec, backends=BACKENDS)
        null = Session(name="null", tracer=NullTracer()).grid(
            spec, backends=BACKENDS
        )
        recorded = Session(name="rec", tracer=RecordingTracer()).grid(
            spec, backends=BACKENDS
        )
        assert untraced.digest() == null.digest() == recorded.digest()
        untraced.check_backend_agreement()
        recorded.check_backend_agreement()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_traced_run_matches_untraced_run(self, backend):
        graph = workload_graph()
        plain = run_algorithm(graph, FloodMinimum, backend)
        traced = run_algorithm(
            graph, FloodMinimum, backend, tracer=RecordingTracer()
        )
        assert traced.rounds == plain.rounds
        assert traced.outputs == plain.outputs
        assert traced.metrics.snapshot() == plain.metrics.snapshot()

    def test_traced_process_shards_match_untraced(self):
        graph = workload_graph()
        plain = run_algorithm(
            graph, FloodMinimum, ShardedBackend(num_workers=2)
        )
        traced = run_algorithm(
            graph,
            FloodMinimum,
            ShardedBackend(num_workers=2),
            tracer=RecordingTracer(),
        )
        assert traced.rounds == plain.rounds
        assert traced.outputs == plain.outputs
        assert traced.metrics.snapshot() == plain.metrics.snapshot()


# ---------------------------------------------------------------------------
# Event content emitted by the engine layers
# ---------------------------------------------------------------------------


class TestEngineEvents:
    def test_reference_round_accounting_matches_metrics(self):
        tracer = RecordingTracer()
        run = run_algorithm(
            workload_graph(), FloodMinimum, "reference", tracer=tracer
        )
        rounds = tracer.rounds()
        assert len(rounds) == run.rounds
        assert sum(r["delivered"] for r in rounds) == run.metrics.messages
        assert sum(r["words"] for r in rounds) == run.metrics.words
        assert sum(r["dropped"] for r in rounds) == run.metrics.dropped
        scheduled = tracer.events_of("scheduled")
        assert scheduled and all(
            e["deferred"] <= e["count"] for e in scheduled
        )

    def test_reference_blocked_edges_only_under_scenario(self):
        clean = RecordingTracer()
        run_algorithm(
            workload_graph(), FloodMinimum, "reference", tracer=clean
        )
        assert clean.events_of("blocked") == []
        faulty = RecordingTracer()
        run_algorithm(
            workload_graph(),
            FloodMinimum,
            "reference",
            scenario="link-drop",
            tracer=faulty,
        )
        blocked = faulty.events_of("blocked")
        assert blocked and all(e["count"] > 0 for e in blocked)

    def test_scheduler_batch_paths(self):
        clean = RecordingTracer()
        run_algorithm(
            workload_graph(), FloodMinimum, "vectorized", tracer=clean
        )
        paths = {e["path"] for e in clean.events_of("scheduler")}
        assert paths == {"clean"}
        faulty = RecordingTracer()
        run_algorithm(
            workload_graph(),
            FloodMinimum,
            "vectorized",
            scenario="link-drop",
            tracer=faulty,
        )
        batches = faulty.events_of("scheduler")
        assert batches
        assert all(e["path"] in ("kernel", "scalar") for e in batches)
        kernel = [e for e in batches if e["path"] == "kernel"]
        assert kernel and all(e["windows"] >= 1 for e in kernel)

    def test_vector_fast_path_records_array_deliveries(self):
        tracer = RecordingTracer()
        run = run_algorithm(
            workload_graph(), VectorFloodMinimum, "vectorized", tracer=tracer
        )
        delivered = tracer.delivered_by_round()
        total = sum(len(messages) for messages in delivered.values())
        assert total == run.metrics.messages
        sample = next(iter(delivered.values()))[0]
        assert sample[2] == "word"

    def test_sharded_workers_emit_barrier_and_shm_events(self):
        tracer = RecordingTracer()
        run_algorithm(
            workload_graph(),
            FloodMinimum,
            ShardedBackend(num_workers=2),
            tracer=tracer,
        )
        barriers = tracer.events_of("barrier")
        assert {e["worker"] for e in barriers} == {0, 1}
        assert tracer.span_totals()["barrier"] > 0.0
        blocks = tracer.events_of("shm_block")
        assert {e["direction"] for e in blocks} == {"down", "up"}
        assert all(e["rows"] <= e["rows_capacity"] for e in blocks)

    def test_shm_overflow_resize_is_traced(self):
        # A tiny initial block forces the down-direction resize path.
        from repro.engine import shm

        tracer = RecordingTracer()
        original = shm.DEFAULT_ROWS
        shm.DEFAULT_ROWS = 2
        try:
            run_algorithm(
                workload_graph(),
                FloodMinimum,
                ShardedBackend(num_workers=2),
                tracer=tracer,
            )
        finally:
            shm.DEFAULT_ROWS = original
        overflows = tracer.events_of("shm_overflow")
        assert overflows and {e["action"] for e in overflows} <= {
            "resize", "pipe-fallback",
        }


# ---------------------------------------------------------------------------
# Property: the trace agrees with the metrics, round by round
# ---------------------------------------------------------------------------


@st.composite
def connected_graphs(draw, max_vertices=12):
    n = draw(st.integers(min_value=3, max_value=max_vertices))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    graph = nx.gnp_random_graph(n, 0.45, seed=seed)
    # A spanning path keeps the flood finite and every vertex reachable.
    graph.add_edges_from((i, i + 1) for i in range(n - 1))
    return graph


@given(connected_graphs())
@settings(max_examples=20, deadline=None)
def test_trace_delivery_counts_match_metrics(graph):
    tracer = RecordingTracer()
    run = run_algorithm(graph, FloodMinimum, "reference", tracer=tracer)
    delivered = tracer.delivered_by_round()
    for round_event in tracer.rounds():
        recorded = len(delivered.get(round_event["round"], ()))
        assert recorded == round_event["delivered"]
    total = sum(len(messages) for messages in delivered.values())
    assert total == run.metrics.messages


# ---------------------------------------------------------------------------
# Trace diffing
# ---------------------------------------------------------------------------


class TestTraceDiff:
    def test_equivalent_backends_do_not_diverge(self):
        report, trace_a, trace_b = run_trace_diff(
            workload_graph(), FloodMinimum, "reference", "vectorized"
        )
        assert not report.diverged
        assert report.rounds_a == report.rounds_b
        assert "no divergence" in report.render()

    def test_doctored_trace_pins_exact_round_and_message(self):
        tracer = RecordingTracer()
        run_algorithm(
            workload_graph(), FloodMinimum, "reference", tracer=tracer
        )
        delivered = tracer.delivered_by_round()
        doctored = {r: list(m) for r, m in delivered.items()}
        target_round = sorted(
            r for r, msgs in doctored.items() if len(msgs) >= 2
        )[1]
        removed = doctored[target_round].pop(0)
        report = diff_delivered(tracer, doctored, "healthy", "doctored")
        assert report.diverged
        assert report.round_index == target_round
        assert report.only_a == [removed]
        assert report.only_b == []
        rendered = report.render()
        assert f"round {target_round}" in rendered
        assert repr(removed[0]) in rendered

    def test_extra_message_shows_on_other_side(self):
        base = {0: [(0, 1, "t", "1")], 1: [(1, 0, "t", "2")]}
        doctored = {
            0: [(0, 1, "t", "1")],
            1: [(1, 0, "t", "2"), (9, 9, "ghost", "None")],
        }
        report = diff_delivered(base, doctored)
        assert report.round_index == 1
        assert report.only_b == [(9, 9, "ghost", "None")]

    def test_round_count_mismatch_is_a_divergence(self):
        short = RecordingTracer()
        short.messages_delivered(0, [Message(0, 1, "t", 1)])
        short.round_end(0, delivered=1, words=1, dropped=0, seconds=0.0)
        long = RecordingTracer()
        long.messages_delivered(0, [Message(0, 1, "t", 1)])
        long.round_end(0, delivered=1, words=1, dropped=0, seconds=0.0)
        long.round_end(1, delivered=0, words=0, dropped=0, seconds=0.0)
        report = diff_delivered(short, long)
        assert report.diverged
        assert report.round_index == 1
        assert report.only_a == report.only_b == []

    def test_diff_requires_message_content(self):
        silent = RecordingTracer(record_messages=False)
        with pytest.raises(ValueError, match="record_messages"):
            diff_delivered(silent, silent)


# ---------------------------------------------------------------------------
# Exports
# ---------------------------------------------------------------------------


class TestChromeExport:
    def _traced_run(self):
        tracer = RecordingTracer()
        run_algorithm(
            workload_graph(),
            FloodMinimum,
            ShardedBackend(num_workers=2),
            tracer=tracer,
        )
        return tracer

    def test_chrome_events_structure(self):
        tracer = self._traced_run()
        events = chrome_trace_events(tracer.events)
        metadata = [e for e in events if e["ph"] == "M"]
        track_names = {
            e["args"]["name"] for e in metadata if e["name"] == "thread_name"
        }
        assert "engine" in track_names
        assert "worker 0" in track_names and "worker 1" in track_names
        slices = [e for e in events if e["ph"] == "X"]
        assert any(e["name"] == "round 0" for e in slices)
        assert all(e["dur"] >= 1.0 for e in slices)
        assert any(e["name"].startswith("barrier") for e in slices)

    def test_write_chrome_trace_file(self, tmp_path):
        tracer = self._traced_run()
        path = write_chrome_trace(tracer, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]

    def test_jsonl_stream_converts_to_chrome(self, tmp_path):
        jsonl_path = tmp_path / "trace.jsonl"
        with JsonlTracer(jsonl_path) as tracer:
            run_algorithm(
                workload_graph(), FloodMinimum, "vectorized", tracer=tracer
            )
        events = read_jsonl_events(jsonl_path)
        assert events
        chrome = chrome_trace_events(events)
        assert any(e.get("ph") == "X" for e in chrome)


# ---------------------------------------------------------------------------
# Session integration: per-layer time budgets
# ---------------------------------------------------------------------------


class TestSessionTimings:
    def test_traced_session_records_timings(self):
        session = Session(name="t", tracer=RecordingTracer())
        result = session.run(unit_spec())
        assert result.timings["run_cell"] > 0.0
        assert result.timings["compute"] > 0.0
        assert result.to_row()["timings"]

    def test_untraced_session_has_empty_timings(self):
        result = Session(name="p").run(unit_spec())
        assert result.timings == {}
        assert result.to_row()["timings"] == {}

    def test_timings_are_per_cell_not_cumulative(self):
        tracer = RecordingTracer()
        session = Session(name="t", tracer=tracer)
        first = session.run(unit_spec())
        second = session.run(unit_spec())
        # Each cell's budget is its own slice of the session tracer's
        # running totals: the two cells partition the total exactly.
        total = tracer.span_totals()["run_cell"]
        assert first.timings["run_cell"] + second.timings["run_cell"] == (
            pytest.approx(total)
        )
        assert second.timings["run_cell"] < total
