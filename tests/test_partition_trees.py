"""Tests of partition trees: parts, tree structure, K3 and split constructions."""

import itertools
import math

import networkx as nx
import pytest

from repro.congest.cost import CostAccountant, unit_overhead
from repro.decomposition.cluster import K3CompatibleCluster, KpCompatibleCluster
from repro.decomposition.routing import ClusterRouter
from repro.graphs import erdos_renyi
from repro.graphs.cliques import enumerate_cliques
from repro.partition_trees import (
    HTreeConstraints,
    Partition,
    PartitionTree,
    SplitGraph,
    SplitTreeConstraints,
    VertexInterval,
    balance_by_communication_degree,
    construct_k3_partition_tree,
    construct_split_kp_tree,
    covering_leaf,
)
from repro.partition_trees.load_balance import MessageBalancer, amplifier_broadcast
from repro.streaming.stream import MainToken, Stream


class TestVertexIntervalAndPartition:
    def test_interval_vertices_and_contains(self):
        universe = tuple(range(0, 20, 2))
        interval = VertexInterval(universe, 2, 5)
        assert interval.vertices() == (4, 6, 8, 10)
        assert interval.contains(6)
        assert not interval.contains(7)
        assert not interval.contains(12)
        assert interval.endpoints() == (4, 10)

    def test_empty_interval(self):
        interval = VertexInterval(tuple(range(5)), 0, -1)
        assert interval.size == 0
        assert not interval.contains(0)
        assert interval.endpoints() == (-1, -1)

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            VertexInterval(tuple(range(3)), 0, 5)

    def test_partition_from_boundaries_round_trip(self):
        universe = [3, 5, 7, 9, 11]
        partition = Partition.from_boundaries(universe, [(3, 5), (7, 7), (9, 11)])
        assert partition.covers_universe()
        assert partition.part_containing(7) == 1
        assert partition.max_part_size() == 2

    def test_whole_partition(self):
        partition = Partition.whole([4, 2, 8])
        assert partition.covers_universe()
        assert len(partition) == 1


def _uniform_tree(universe, layers, parts_per_node):
    """A small hand-built partition tree splitting the universe evenly."""
    ordered = sorted(universe)
    chunk = math.ceil(len(ordered) / parts_per_node)
    boundaries = [
        (ordered[i * chunk], ordered[min(len(ordered), (i + 1) * chunk) - 1])
        for i in range(math.ceil(len(ordered) / chunk))
    ]
    partition = Partition.from_boundaries(ordered, boundaries)
    tree = PartitionTree.with_root(ordered, num_layers=layers, root_partition=partition)
    frontier = [tree.root]
    for _ in range(layers - 1):
        next_frontier = []
        for node in frontier:
            for index in range(len(node.partition)):
                next_frontier.append(node.add_child(index, partition))
        frontier = next_frontier
    return tree


class TestPartitionTreeStructure:
    def test_structure_validation(self):
        tree = _uniform_tree(range(12), layers=3, parts_per_node=3)
        tree.validate_structure(x=3)
        assert len(tree.leaf_nodes()) == 9
        assert len(tree.leaf_parts()) == 27

    def test_ancestor_parts_length_equals_depth_plus_one(self):
        tree = _uniform_tree(range(12), layers=3, parts_per_node=3)
        node, part_index = tree.leaf_parts()[5]
        ancestors = tree.ancestor_parts(node, part_index)
        assert len(ancestors) == 3

    def test_covering_leaf_theorem_13(self):
        """Every triangle's edges run between the ancestor parts of its leaf."""
        graph = erdos_renyi(12, 6.0, seed=3)
        tree = _uniform_tree(range(12), layers=3, parts_per_node=3)
        for triangle in enumerate_cliques(graph, 3):
            node, part_index, chosen = covering_leaf(tree, list(triangle))
            ancestors = tree.ancestor_parts(node, part_index)
            covered = set()
            for left, right in itertools.combinations(range(len(ancestors)), 2):
                for u in ancestors[left].vertices():
                    for v in ancestors[right].vertices():
                        if graph.has_edge(u, v):
                            covered.add(tuple(sorted((u, v))))
            for u, v in itertools.combinations(triangle, 2):
                assert tuple(sorted((u, v))) in covered

    def test_covering_leaf_wrong_arity(self):
        tree = _uniform_tree(range(12), layers=3, parts_per_node=3)
        with pytest.raises(ValueError):
            covering_leaf(tree, [1, 2])


class TestHTreeConstraints:
    def test_single_part_partitions_violate_size(self):
        """A degenerate tree with one giant part violates SIZE for large k."""
        universe = list(range(256))
        partition = Partition.whole(universe)
        tree = PartitionTree.with_root(universe, 3, partition)
        child = tree.root.add_child(0, partition)
        child.add_child(0, partition)
        graph = erdos_renyi(256, 10.0, seed=1)
        violations = HTreeConstraints(p=3).check_tree(tree, graph)
        assert any("SIZE" in violation for violation in violations)


class TestLoadBalanceLemmas:
    def _cluster(self, n=60):
        graph = erdos_renyi(n, 12.0, seed=8)
        cluster = K3CompatibleCluster.from_edges(graph, graph.edges)
        accountant = CostAccountant(n=n, overhead=unit_overhead())
        return cluster, ClusterRouter(cluster=cluster, accountant=accountant)

    def test_message_balancer_respects_budgets(self):
        balancer = MessageBalancer(num_messages=50, total_comm_degree=200, mu=4.0, n=60, k=50)
        tokens = [MainToken(index=i, owner=i, summary=(i, 4)) for i in range(50)]
        outputs = balancer.run_reference(Stream(tokens, b_aux=0, b_write=1))
        assert len(outputs) == 50

    def test_balance_by_degree_covers_all_messages(self):
        cluster, router = self._cluster()
        num_messages = cluster.k
        assignment = balance_by_communication_degree(cluster, router, num_messages)
        owners = [assignment.owner_of_message(m) for m in range(1, num_messages + 1)]
        assert all(owner is not None for owner in owners)
        assert set(owners) <= set(cluster.v_star)

    def test_balance_by_degree_proportional_loads(self):
        """Lemma 20: each V* vertex gets O(deg/mu) messages."""
        cluster, router = self._cluster()
        num_messages = cluster.k
        assignment = balance_by_communication_degree(cluster, router, num_messages)
        mu = cluster.mu
        for vertex in cluster.v_star:
            load = len(assignment.messages_of(vertex, num_messages))
            bound = 4 * (cluster.communication_degree(vertex) / mu) + 2
            assert load <= bound

    def test_low_degree_vertices_get_nothing(self):
        cluster, router = self._cluster()
        assignment = balance_by_communication_degree(cluster, router, cluster.k)
        below_average = set(cluster.v_minus) - set(cluster.v_star)
        for vertex in below_average:
            assert assignment.ranges.get(vertex) is None

    def test_amplifier_broadcast_reaches_everyone(self):
        cluster, router = self._cluster()
        members = cluster.ordered_members()
        holders = {f"msg{i}": members[i % len(members)] for i in range(10)}
        known = amplifier_broadcast(cluster, router, holders)
        for audience in known.values():
            assert audience == set(members)


class TestK3Construction:
    def _cluster(self, n=60, seed=8):
        graph = erdos_renyi(n, 14.0, seed=seed)
        cluster = K3CompatibleCluster.from_edges(graph, graph.edges)
        accountant = CostAccountant(n=n, overhead=unit_overhead())
        return graph, cluster, ClusterRouter(cluster=cluster, accountant=accountant)

    def test_three_layers_and_universe(self):
        _, cluster, router = self._cluster()
        result = construct_k3_partition_tree(cluster, router=router)
        assert result.tree.num_layers == 3
        assert set(result.tree.universe) == set(cluster.ordered_members())
        result.tree.validate_structure()

    def test_definition_14_constraints_hold(self):
        _, cluster, router = self._cluster()
        result = construct_k3_partition_tree(cluster, router=router, check_constraints=True)
        assert result.violations == []

    def test_rounds_charged(self):
        _, cluster, router = self._cluster()
        result = construct_k3_partition_tree(cluster, router=router)
        assert result.rounds > 0

    def test_every_leaf_part_assigned_to_a_vstar_vertex(self):
        _, cluster, router = self._cluster()
        result = construct_k3_partition_tree(cluster, router=router)
        assert len(result.assignment) == len(result.tree.leaf_parts())
        assert set(result.assignment.owner.values()) <= set(cluster.v_star)

    def test_leaf_load_balanced_by_degree(self):
        """Theorem 16: each V* vertex owns O(deg/mu) leaf parts."""
        _, cluster, router = self._cluster()
        result = construct_k3_partition_tree(cluster, router=router)
        mu = cluster.mu
        total_parts = len(result.tree.leaf_parts())
        k = cluster.k
        for vertex, load in result.assignment.load_per_vertex().items():
            bound = 4 * (total_parts / k) * (cluster.communication_degree(vertex) / mu) + 4
            assert load <= bound

    def test_every_triangle_covered_by_some_leaf(self):
        """Theorem 13 applied to the constructed tree over V^-."""
        graph, cluster, router = self._cluster()
        result = construct_k3_partition_tree(cluster, router=router)
        members = set(cluster.ordered_members())
        inner_triangles = [
            t for t in enumerate_cliques(graph, 3) if set(t) <= members
        ]
        for triangle in inner_triangles:
            node, part_index, _ = covering_leaf(result.tree, list(triangle))
            assert (node.path, part_index) in result.assignment.owner

    def test_works_without_router(self):
        _, cluster, _ = self._cluster()
        result = construct_k3_partition_tree(cluster, router=None)
        assert result.rounds == 0
        assert len(result.assignment) > 0


class TestSplitTree:
    def _cluster(self, n=70, seed=5, p=4):
        graph = erdos_renyi(n, 16.0, seed=seed)
        core_edges = [e for e in graph.edges if e[0] < n // 2 and e[1] < n // 2]
        cluster = KpCompatibleCluster.from_edges(graph, core_edges, p=p, delta=3)
        cluster.attach_boundary_edges()
        # Import E': every graph edge with both endpoints outside V^-.
        members = set(cluster.v_minus)
        holder = cluster.ordered_members()[0]
        outside_edges = [
            (u, v) for u, v in graph.edges if u not in members and v not in members
        ]
        cluster.import_outside_edges(outside_edges, holder=holder)
        cluster.compute_deg_star()
        accountant = CostAccountant(n=n, overhead=unit_overhead())
        return graph, cluster, ClusterRouter(cluster=cluster, accountant=accountant)

    def test_split_graph_edge_classification(self):
        graph, cluster, _ = self._cluster()
        split = SplitGraph.from_cluster(cluster)
        assert split.v1 == cluster.v_minus
        assert not split.v1 & split.v2
        for u, v in split.e1:
            assert u in split.v1 and v in split.v1
        for u, v in split.e12:
            assert (u in split.v1) != (v in split.v1)

    def test_split_tree_layer_universes(self):
        _, cluster, router = self._cluster()
        result = construct_split_kp_tree(cluster, p=4, p_prime=2, router=router)
        tree = result.tree
        pi = 4 - 2
        v1, v2 = set(result.split.v1), set(result.split.v2)
        for node in tree.nodes():
            universe = set(node.partition.universe)
            if node.depth < pi:
                assert universe <= v2
            else:
                assert universe <= v1

    def test_split_tree_has_p_layers_and_valid_partitions(self):
        _, cluster, router = self._cluster()
        result = construct_split_kp_tree(cluster, p=4, p_prime=3, router=router)
        assert result.tree.num_layers == 4
        for node in result.tree.nodes():
            assert node.partition.covers_universe()

    def test_definition_22_constraints_hold(self):
        _, cluster, router = self._cluster()
        result = construct_split_kp_tree(cluster, p=4, p_prime=2, router=router,
                                         check_constraints=True)
        assert result.violations == []

    def test_invalid_p_prime_rejected(self):
        _, cluster, router = self._cluster()
        with pytest.raises(ValueError):
            construct_split_kp_tree(cluster, p=4, p_prime=1, router=router)

    def test_rounds_charged(self):
        _, cluster, router = self._cluster()
        result = construct_split_kp_tree(cluster, p=4, p_prime=2, router=router)
        assert result.rounds > 0

    def test_theorem_23_coverage(self):
        """Cliques with exactly p' vertices in V1 are covered by some leaf."""
        graph, cluster, router = self._cluster()
        result = construct_split_kp_tree(cluster, p=4, p_prime=2, router=router)
        split = result.split
        v1 = set(split.v1)
        candidates = [
            clique for clique in enumerate_cliques(graph, 4)
            if len(set(clique) & v1) == 2
        ][:10]
        for clique in candidates:
            outside = sorted(set(clique) - v1)
            inside = sorted(set(clique) & v1)
            ordered = outside + inside  # V2 vertices choose first, then V1
            node, part_index, chosen = covering_leaf(result.tree, ordered)
            ancestors = result.tree.ancestor_parts(node, part_index)
            learned = set()
            for a, b in itertools.combinations(range(len(ancestors)), 2):
                learned |= split.edges_between(ancestors[a].vertices(), ancestors[b].vertices())
            for u, v in itertools.combinations(clique, 2):
                assert tuple(sorted((u, v))) in learned
